package genome

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"genomeatscale/internal/synth"
)

func TestReadFASTABasic(t *testing.T) {
	in := ">seq1 first sequence\nACGT\nacgt\n\n>seq2\nTTTT\n"
	recs, err := ReadFASTA(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].ID != "seq1" || recs[0].Description != "first sequence" {
		t.Errorf("record 0 header parsed as %q / %q", recs[0].ID, recs[0].Description)
	}
	if string(recs[0].Seq) != "ACGTACGT" {
		t.Errorf("record 0 seq = %q", recs[0].Seq)
	}
	if recs[1].ID != "seq2" || recs[1].Description != "" || string(recs[1].Seq) != "TTTT" {
		t.Errorf("record 1 = %+v", recs[1])
	}
}

func TestReadFASTAErrors(t *testing.T) {
	cases := []string{
		"ACGT\n",             // data before header
		">\nACGT\n",          // empty header
		">seq1\n>seq2\nAC\n", // empty record
		">last\n",            // empty final record
	}
	for i, in := range cases {
		if _, err := ReadFASTA(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestWriteReadRoundTripAndFiles(t *testing.T) {
	records := []Record{
		{ID: "a", Description: "desc", Seq: []byte("ACGTACGTACGTACGTACGTACGT")},
		{ID: "b", Seq: []byte("GGG")},
	}
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, records, 10); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFASTA(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].ID != "a" || string(back[0].Seq) != string(records[0].Seq) {
		t.Errorf("round trip mismatch: %+v", back)
	}
	// File round trip.
	path := filepath.Join(t.TempDir(), "test.fasta")
	if err := WriteFASTAFile(path, records, 0); err != nil {
		t.Fatal(err)
	}
	back2, err := ReadFASTAFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back2) != 2 || string(back2[1].Seq) != "GGG" {
		t.Errorf("file round trip mismatch")
	}
	if _, err := ReadFASTAFile(filepath.Join(t.TempDir(), "missing.fasta")); err == nil {
		t.Error("missing file should error")
	}
	if err := WriteFASTA(&bytes.Buffer{}, []Record{{Seq: []byte("A")}}, 0); err == nil {
		t.Error("empty ID should error")
	}
}

func TestEncodeDecodeKmer(t *testing.T) {
	code, err := EncodeKmer([]byte("ACGT"))
	if err != nil {
		t.Fatal(err)
	}
	// A=00 C=01 G=10 T=11 → 0b00011011 = 27
	if code != 27 {
		t.Errorf("EncodeKmer(ACGT) = %d, want 27", code)
	}
	if string(DecodeKmer(code, 4)) != "ACGT" {
		t.Errorf("DecodeKmer round trip failed")
	}
	if _, err := EncodeKmer([]byte("ACGN")); err == nil {
		t.Error("invalid base should error")
	}
	if _, err := EncodeKmer(nil); err == nil {
		t.Error("empty k-mer should error")
	}
	if _, err := EncodeKmer(bytes.Repeat([]byte("A"), 32)); err == nil {
		t.Error("k > MaxK should error")
	}
}

// basesFromRaw deterministically maps arbitrary fuzz bytes to a k-length
// nucleotide sequence.
func basesFromRaw(raw []byte, k int) []byte {
	seq := make([]byte, k)
	for i := range seq {
		var b byte
		if len(raw) > 0 {
			b = raw[i%len(raw)]
		}
		seq[i] = bases[int(b+byte(i))%4]
	}
	return seq
}

func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	f := func(raw []byte, kRaw uint8) bool {
		k := int(kRaw%MaxK) + 1
		seq := basesFromRaw(raw, k)
		code, err := EncodeKmer(seq)
		if err != nil {
			return false
		}
		return string(DecodeKmer(code, k)) == string(seq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestReverseComplement(t *testing.T) {
	if string(ReverseComplement([]byte("ACGT"))) != "ACGT" {
		t.Error("ACGT is its own reverse complement")
	}
	if string(ReverseComplement([]byte("AACG"))) != "CGTT" {
		t.Error("ReverseComplement(AACG) wrong")
	}
	if string(ReverseComplement([]byte("ANT"))) != "ANT" {
		t.Error("N should map to N")
	}
}

func TestReverseComplementCodeMatchesStringVersion(t *testing.T) {
	f := func(raw []byte, kRaw uint8) bool {
		k := int(kRaw%MaxK) + 1
		seq := basesFromRaw(raw, k)
		code, _ := EncodeKmer(seq)
		rcSeq := ReverseComplement(seq)
		rcCode, _ := EncodeKmer(rcSeq)
		return ReverseComplementCode(code, k) == rcCode
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCanonicalCodeStrandIndependent(t *testing.T) {
	seq := []byte("ACCGTTGAC")
	code, _ := EncodeKmer(seq)
	rcCode, _ := EncodeKmer(ReverseComplement(seq))
	if CanonicalCode(code, len(seq)) != CanonicalCode(rcCode, len(seq)) {
		t.Error("canonical codes of a k-mer and its reverse complement must match")
	}
}

func TestExtractKmersPaperExample(t *testing.T) {
	// The paper: "in a sequence AATGTC, there are four 3-mers (AAT, ATG,
	// TGT, GTC)".
	kmers, err := ExtractKmers([]byte("AATGTC"), ExtractorOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"AAT", "ATG", "TGT", "GTC"}
	if len(kmers) != len(want) {
		t.Fatalf("got %d k-mers, want %d", len(kmers), len(want))
	}
	for i, w := range want {
		if string(DecodeKmer(kmers[i], 3)) != w {
			t.Errorf("k-mer %d = %s, want %s", i, DecodeKmer(kmers[i], 3), w)
		}
	}
	// And three 4-mers.
	four, _ := ExtractKmers([]byte("AATGTC"), ExtractorOptions{K: 4})
	if len(four) != 3 {
		t.Errorf("4-mers = %d, want 3", len(four))
	}
}

func TestExtractKmersSkipsInvalidWindows(t *testing.T) {
	kmers, err := ExtractKmers([]byte("ACGTNACGT"), ExtractorOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Windows: ACG CGT (then N breaks) ACG CGT → 4 k-mers, none containing N.
	if len(kmers) != 4 {
		t.Errorf("got %d k-mers, want 4", len(kmers))
	}
	short, _ := ExtractKmers([]byte("AC"), ExtractorOptions{K: 3})
	if short != nil {
		t.Error("sequence shorter than k should yield nil")
	}
	if _, err := ExtractKmers([]byte("ACGT"), ExtractorOptions{K: 0}); err == nil {
		t.Error("invalid k should error")
	}
}

func TestExtractKmersCanonicalInvariantUnderRC(t *testing.T) {
	seq := []byte("ACCGTAGGCTTACGATCG")
	opts := ExtractorOptions{K: 5, Canonical: true}
	a, _ := ExtractKmers(seq, opts)
	b, _ := ExtractKmers(ReverseComplement(seq), opts)
	setA := map[uint64]bool{}
	setB := map[uint64]bool{}
	for _, x := range a {
		setA[x] = true
	}
	for _, x := range b {
		setB[x] = true
	}
	if len(setA) != len(setB) {
		t.Fatal("canonical k-mer sets differ in size under reverse complement")
	}
	for x := range setA {
		if !setB[x] {
			t.Fatal("canonical k-mer sets differ under reverse complement")
		}
	}
}

func TestCountAndFilterKmers(t *testing.T) {
	counts, err := CountKmers([][]byte{[]byte("AAAA"), []byte("AAAT")}, ExtractorOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	aaa, _ := EncodeKmer([]byte("AAA"))
	aat, _ := EncodeKmer([]byte("AAT"))
	if counts[aaa] != 3 { // AAAA has 2, AAAT has 1
		t.Errorf("count(AAA) = %d, want 3", counts[aaa])
	}
	if counts[aat] != 1 {
		t.Errorf("count(AAT) = %d, want 1", counts[aat])
	}
	kept := FilterCounts(counts, 2)
	if len(kept) != 1 || kept[0] != aaa {
		t.Errorf("FilterCounts = %v", kept)
	}
	if _, err := CountKmers([][]byte{[]byte("AAAA")}, ExtractorOptions{K: 0}); err == nil {
		t.Error("invalid options should error")
	}
}

func TestKmerSpace(t *testing.T) {
	if KmerSpace(3) != 64 {
		t.Error("KmerSpace(3) wrong")
	}
	if KmerSpace(31) != uint64(1)<<62 {
		t.Error("KmerSpace(31) wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	KmerSpace(0)
}

func TestBuildSampleAndDataset(t *testing.T) {
	opts := SampleOptions{ExtractorOptions: ExtractorOptions{K: 4, Canonical: true}, MinCount: 1}
	s1, err := BuildSample("s1", [][]byte{[]byte("ACGTACGTACGT")}, opts)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := BuildSample("s2", [][]byte{[]byte("ACGTACGTACGA")}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Cardinality() == 0 || s2.Cardinality() == 0 {
		t.Fatal("samples should not be empty")
	}
	j, err := s1.Jaccard(s2)
	if err != nil {
		t.Fatal(err)
	}
	if j <= 0 || j > 1 {
		t.Errorf("Jaccard = %v", j)
	}
	selfJ, _ := s1.Jaccard(s1)
	if selfJ != 1 {
		t.Errorf("self Jaccard = %v", selfJ)
	}
	ds, err := BuildDataset([]Sample{s1, s2})
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumSamples() != 2 || ds.NumAttributes() != KmerSpace(4) {
		t.Errorf("dataset shape wrong")
	}
	if ds.SampleName(0) != "s1" {
		t.Errorf("name = %q", ds.SampleName(0))
	}
}

func TestBuildSampleMinCount(t *testing.T) {
	opts := SampleOptions{ExtractorOptions: ExtractorOptions{K: 3}, MinCount: 2}
	s, err := BuildSample("s", [][]byte{[]byte("AAAA"), []byte("CCCT")}, opts)
	if err != nil {
		t.Fatal(err)
	}
	aaa, _ := EncodeKmer([]byte("AAA"))
	if s.Cardinality() != 1 || s.Kmers[0] != aaa {
		t.Errorf("MinCount filter failed: %v", s.Kmers)
	}
}

func TestBuildSampleErrors(t *testing.T) {
	if _, err := BuildSample("x", nil, SampleOptions{ExtractorOptions: ExtractorOptions{K: 0}}); err == nil {
		t.Error("invalid k should error")
	}
	s1 := Sample{Name: "a", K: 3}
	s2 := Sample{Name: "b", K: 5}
	if _, err := s1.Jaccard(s2); err == nil {
		t.Error("mismatched k should error")
	}
	if _, err := BuildDataset(nil); err == nil {
		t.Error("empty dataset should error")
	}
	if _, err := BuildDataset([]Sample{s1, s2}); err == nil {
		t.Error("mixed k should error")
	}
}

func TestBuildSampleFromRecords(t *testing.T) {
	records := []Record{{ID: "r1", Seq: []byte("ACGTACGT")}, {ID: "r2", Seq: []byte("TTTTACGT")}}
	s, err := BuildSampleFromRecords("combined", records, SampleOptions{ExtractorOptions: ExtractorOptions{K: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "combined" || s.Cardinality() == 0 {
		t.Errorf("sample = %+v", s)
	}
}

func TestRandomSequenceAndMutate(t *testing.T) {
	rng := synth.NewRNG(1)
	seq := RandomSequence(rng, 500)
	if len(seq) != 500 {
		t.Fatal("wrong length")
	}
	for _, b := range seq {
		if baseCode(b) < 0 {
			t.Fatal("invalid base in random sequence")
		}
	}
	identical, err := Mutate(rng, seq, MutationModel{})
	if err != nil {
		t.Fatal(err)
	}
	if string(identical) != string(seq) {
		t.Error("zero-rate mutation must be identity")
	}
	mutated, err := Mutate(rng, seq, MutationModel{SubstitutionRate: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if string(mutated) == string(seq) {
		t.Error("substitutions expected")
	}
	if len(mutated) != len(seq) {
		t.Error("substitution-only mutation must preserve length")
	}
	indel, err := Mutate(rng, seq, MutationModel{InsertionRate: 0.2, DeletionRate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(indel) == len(seq) {
		t.Log("indel mutation happened to preserve length (unlikely but allowed)")
	}
	if _, err := Mutate(rng, seq, MutationModel{SubstitutionRate: 2}); err == nil {
		t.Error("invalid rate should error")
	}
}

func TestRandomSequenceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	RandomSequence(synth.NewRNG(1), -1)
}

func TestGenerateFamilyDivergenceGradient(t *testing.T) {
	cfg := FamilyConfig{
		AncestorLength: 3000,
		Descendants:    4,
		Model:          MutationModel{SubstitutionRate: 0.02},
		Seed:           7,
	}
	samples, err := GenerateSampleFamily(cfg, SampleOptions{ExtractorOptions: ExtractorOptions{K: 11, Canonical: true}})
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 5 {
		t.Fatalf("got %d samples", len(samples))
	}
	// Later descendants should be less similar to the ancestor.
	prev := 1.1
	for d := 1; d < len(samples); d++ {
		j, err := samples[0].Jaccard(samples[d])
		if err != nil {
			t.Fatal(err)
		}
		if j >= prev {
			t.Errorf("descendant %d similarity %v not below previous %v", d, j, prev)
		}
		if j <= 0 {
			t.Errorf("descendant %d should still share k-mers with ancestor", d)
		}
		prev = j
	}
}

func TestGenerateFamilyErrors(t *testing.T) {
	if _, err := GenerateFamily(FamilyConfig{AncestorLength: 0}); err == nil {
		t.Error("zero length should error")
	}
	if _, err := GenerateFamily(FamilyConfig{AncestorLength: 10, Descendants: -1}); err == nil {
		t.Error("negative descendants should error")
	}
	if _, err := GenerateFamily(FamilyConfig{AncestorLength: 10, Model: MutationModel{DeletionRate: 2}}); err == nil {
		t.Error("bad model should error")
	}
	if _, err := GenerateSampleFamily(FamilyConfig{AncestorLength: 0}, SampleOptions{}); err == nil {
		t.Error("propagated error expected")
	}
	if _, err := GenerateSampleFamily(FamilyConfig{AncestorLength: 100}, SampleOptions{ExtractorOptions: ExtractorOptions{K: 0}}); err == nil {
		t.Error("bad sample options should error")
	}
}
