package genome

import (
	"fmt"
	"slices"

	"genomeatscale/internal/core"
)

// Sample is a sequencing sample represented — as in the paper — by the set
// of (canonical) k-mers present in its reads after noise filtering.
type Sample struct {
	// Name identifies the sample (e.g. the SRA accession).
	Name string
	// K is the k-mer length used to build the sample.
	K int
	// Kmers are the sorted, duplicate-free packed k-mer codes.
	Kmers []uint64
}

// Cardinality returns |X_i|, the number of distinct k-mers.
func (s Sample) Cardinality() int { return len(s.Kmers) }

// SampleOptions configures construction of a Sample from sequences.
type SampleOptions struct {
	ExtractorOptions
	// MinCount drops k-mers occurring fewer than MinCount times (noise
	// filtering); 0 or 1 keeps everything.
	MinCount int
}

// BuildSample constructs a Sample from raw sequences (e.g. the reads or
// contigs of one sequencing experiment).
func BuildSample(name string, seqs [][]byte, opts SampleOptions) (Sample, error) {
	if err := opts.ExtractorOptions.Validate(); err != nil {
		return Sample{}, err
	}
	counts, err := CountKmers(seqs, opts.ExtractorOptions)
	if err != nil {
		return Sample{}, err
	}
	min := opts.MinCount
	if min < 1 {
		min = 1
	}
	kmers := FilterCounts(counts, min)
	slices.Sort(kmers)
	return Sample{Name: name, K: opts.K, Kmers: kmers}, nil
}

// BuildSampleFromRecords constructs a Sample from FASTA records.
func BuildSampleFromRecords(name string, records []Record, opts SampleOptions) (Sample, error) {
	seqs := make([][]byte, len(records))
	for i, r := range records {
		seqs[i] = r.Seq
	}
	return BuildSample(name, seqs, opts)
}

// Jaccard returns the exact Jaccard similarity of two samples built with
// the same k.
func (s Sample) Jaccard(other Sample) (float64, error) {
	if s.K != other.K {
		return 0, fmt.Errorf("genome: cannot compare samples with k=%d and k=%d", s.K, other.K)
	}
	return core.JaccardPair(s.Kmers, other.Kmers), nil
}

// BuildDataset assembles SimilarityAtScale input from samples that all use
// the same k. The attribute universe is the full k-mer space 4^k, which is
// what makes the indicator matrix hypersparse (Section III-B).
func BuildDataset(samples []Sample) (*core.InMemoryDataset, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("genome: no samples")
	}
	k := samples[0].K
	names := make([]string, len(samples))
	values := make([][]uint64, len(samples))
	for i, s := range samples {
		if s.K != k {
			return nil, fmt.Errorf("genome: sample %q uses k=%d, expected %d", s.Name, s.K, k)
		}
		names[i] = s.Name
		values[i] = s.Kmers
	}
	return core.NewInMemoryDataset(names, values, KmerSpace(k))
}
