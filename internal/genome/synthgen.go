package genome

import (
	"fmt"

	"genomeatscale/internal/synth"
)

// The synthetic genome generator stands in for the public sequencing
// archives used by the paper (Kingsford RNASeq and BIGSI WGS data), which
// are terabyte-scale and not available offline. It produces families of
// related sequences with a simple substitution/insertion/deletion mutation
// model so that downstream Jaccard distances reflect a known evolutionary
// structure — the property the paper's applications (clustering, guide
// trees) rely on.

// bases holds the nucleotide alphabet.
var bases = []byte{'A', 'C', 'G', 'T'}

// RandomSequence generates a uniformly random nucleotide sequence.
func RandomSequence(rng *synth.RNG, length int) []byte {
	if length < 0 {
		//gas:invariant sequence lengths come from generator configs validated non-negative at the flag layer
		panic(fmt.Sprintf("genome: negative sequence length %d", length))
	}
	out := make([]byte, length)
	for i := range out {
		out[i] = bases[rng.Intn(4)]
	}
	return out
}

// MutationModel configures Mutate.
type MutationModel struct {
	// SubstitutionRate is the per-base probability of a substitution.
	SubstitutionRate float64
	// InsertionRate is the per-base probability of inserting a random base
	// after the current position.
	InsertionRate float64
	// DeletionRate is the per-base probability of deleting the current base.
	DeletionRate float64
}

// Validate checks the model rates.
func (m MutationModel) Validate() error {
	for _, r := range []float64{m.SubstitutionRate, m.InsertionRate, m.DeletionRate} {
		if r < 0 || r > 1 {
			return fmt.Errorf("genome: mutation rate %v out of [0,1]", r)
		}
	}
	return nil
}

// Mutate applies the mutation model to a copy of seq.
func Mutate(rng *synth.RNG, seq []byte, model MutationModel) ([]byte, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	out := make([]byte, 0, len(seq)+8)
	for _, b := range seq {
		if rng.Float64() < model.DeletionRate {
			continue
		}
		if rng.Float64() < model.SubstitutionRate {
			nb := bases[rng.Intn(4)]
			for nb == b {
				nb = bases[rng.Intn(4)]
			}
			b = nb
		}
		out = append(out, b)
		if rng.Float64() < model.InsertionRate {
			out = append(out, bases[rng.Intn(4)])
		}
	}
	return out, nil
}

// FamilyConfig configures GenerateFamily.
type FamilyConfig struct {
	// AncestorLength is the length of the common ancestor sequence.
	AncestorLength int
	// Descendants is the number of derived samples to generate.
	Descendants int
	// Model is the per-descendant mutation model; descendant i receives
	// i+1 successive applications of the model, so later descendants are
	// progressively more diverged (a simple evolutionary gradient).
	Model MutationModel
	// Seed makes generation deterministic.
	Seed uint64
}

// GenerateFamily produces a family of related sequences: the ancestor plus
// Descendants mutated copies. Record IDs are "ancestor" and "descendant-i".
func GenerateFamily(cfg FamilyConfig) ([]Record, error) {
	if cfg.AncestorLength <= 0 {
		return nil, fmt.Errorf("genome: AncestorLength must be positive, got %d", cfg.AncestorLength)
	}
	if cfg.Descendants < 0 {
		return nil, fmt.Errorf("genome: Descendants must be non-negative, got %d", cfg.Descendants)
	}
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	rng := synth.NewRNG(cfg.Seed ^ 0x5EEDFACE)
	ancestor := RandomSequence(rng, cfg.AncestorLength)
	records := []Record{{ID: "ancestor", Seq: ancestor}}
	for d := 0; d < cfg.Descendants; d++ {
		seq := ancestor
		var err error
		for round := 0; round <= d; round++ {
			seq, err = Mutate(rng, seq, cfg.Model)
			if err != nil {
				return nil, err
			}
		}
		records = append(records, Record{
			ID:          fmt.Sprintf("descendant-%d", d),
			Description: fmt.Sprintf("generation %d", d+1),
			Seq:         seq,
		})
	}
	return records, nil
}

// GenerateSampleFamily builds ready-to-use Samples for a synthetic family,
// one sample per family member.
func GenerateSampleFamily(cfg FamilyConfig, opts SampleOptions) ([]Sample, error) {
	records, err := GenerateFamily(cfg)
	if err != nil {
		return nil, err
	}
	samples := make([]Sample, 0, len(records))
	for _, rec := range records {
		s, err := BuildSample(rec.ID, [][]byte{rec.Seq}, opts)
		if err != nil {
			return nil, err
		}
		samples = append(samples, s)
	}
	return samples, nil
}
