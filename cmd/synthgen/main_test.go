package main

import (
	"os"
	"path/filepath"
	"testing"

	"genomeatscale/internal/genome"
)

func TestRunGenomesMode(t *testing.T) {
	dir := t.TempDir()
	stdout, _ := os.CreateTemp(dir, "stdout")
	defer stdout.Close()
	outDir := filepath.Join(dir, "genomes")
	if err := run([]string{"-mode", "genomes", "-samples", "3", "-length", "2000", "-out", outDir}, stdout); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(outDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("expected 3 FASTA files, got %d", len(entries))
	}
	records, err := genome.ReadFASTAFile(filepath.Join(outDir, "ancestor.fasta"))
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 || len(records[0].Seq) != 2000 {
		t.Errorf("ancestor record = %d sequences, %d bp", len(records), len(records[0].Seq))
	}
}

func TestRunSetsMode(t *testing.T) {
	dir := t.TempDir()
	stdout, _ := os.CreateTemp(dir, "stdout")
	defer stdout.Close()
	outDir := filepath.Join(dir, "sets")
	if err := run([]string{"-mode", "sets", "-samples", "4", "-attributes", "5000", "-density", "0.01", "-out", outDir}, stdout); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(outDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("expected 4 sample files, got %d", len(entries))
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	stdout, _ := os.CreateTemp(dir, "stdout")
	defer stdout.Close()
	if err := run([]string{"-mode", "unknown", "-out", dir}, stdout); err == nil {
		t.Error("unknown mode should be rejected")
	}
	if err := run([]string{"-mode", "genomes", "-samples", "0", "-out", dir}, stdout); err == nil {
		t.Error("zero samples should be rejected")
	}
	if err := run([]string{"-mode", "sets", "-density", "5", "-out", dir}, stdout); err == nil {
		t.Error("invalid density should be rejected")
	}
}
