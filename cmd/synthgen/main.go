// Command synthgen generates synthetic inputs for the other tools:
// either a family of related genome sequences as FASTA files (one file per
// sample, a common ancestor plus progressively diverged descendants), or
// generic categorical sample files with a chosen density — the synthetic
// datasets of Section V-A3.
//
//	synthgen -mode genomes -samples 8 -length 50000 -substitution-rate 0.01 -out data/
//	synthgen -mode sets -samples 16 -attributes 1000000 -density 0.001 -out data/
//	synthgen -mode sets -binary -samples 1000 -attributes 1000000 -out data/   # compact .smp for similarityatscale -dir
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"genomeatscale/internal/cliutil"
	"genomeatscale/internal/genome"
	"genomeatscale/internal/samplefile"
	"genomeatscale/internal/synth"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "synthgen:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := cliutil.NewFlagSet("synthgen")
	mode := fs.String("mode", "genomes", "what to generate: genomes (FASTA family) or sets (categorical sample files)")
	samples := fs.Int("samples", 8, "number of samples to generate")
	length := fs.Int("length", 50_000, "genomes: ancestor sequence length")
	subRate := fs.Float64("substitution-rate", 0.01, "genomes: per-base substitution rate per generation")
	indelRate := fs.Float64("indel-rate", 0.001, "genomes: per-base insertion/deletion rate per generation")
	attributes := fs.Uint64("attributes", 1_000_000, "sets: attribute universe size m")
	binaryOut := fs.Bool("binary", false, "sets: write the compact binary sample encoding (.smp) instead of text (.txt)")
	density := fs.Float64("density", 0.001, "sets: probability that an attribute is present in a sample")
	variability := fs.Float64("column-variability", 0, "sets: per-sample density variability (0 = uniform)")
	seed := fs.Uint64("seed", 42, "random seed")
	outDir := fs.String("out", ".", "output directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}

	switch *mode {
	case "genomes":
		if *samples < 1 {
			return fmt.Errorf("need at least one sample")
		}
		records, err := genome.GenerateFamily(genome.FamilyConfig{
			AncestorLength: *length,
			Descendants:    *samples - 1,
			Model: genome.MutationModel{
				SubstitutionRate: *subRate,
				InsertionRate:    *indelRate,
				DeletionRate:     *indelRate,
			},
			Seed: *seed,
		})
		if err != nil {
			return err
		}
		for _, rec := range records {
			path := filepath.Join(*outDir, rec.ID+".fasta")
			if err := genome.WriteFASTAFile(path, []genome.Record{rec}, 70); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %s (%d bp)\n", path, len(rec.Seq))
		}
		return nil

	case "sets":
		ds, err := synth.Generate(synth.Config{
			Samples:           *samples,
			Attributes:        *attributes,
			Density:           *density,
			ColumnVariability: *variability,
			Seed:              *seed,
		})
		if err != nil {
			return err
		}
		// The samplefile writers produce the on-disk formats the out-of-core
		// ingestion path reads (similarityatscale -dir), and report
		// write-back failures such as a full disk.
		write, ext := samplefile.WriteText, ".txt"
		if *binaryOut {
			write, ext = samplefile.WriteBinary, ".smp"
		}
		for i := 0; i < ds.NumSamples(); i++ {
			path := filepath.Join(*outDir, fmt.Sprintf("sample-%03d%s", i, ext))
			if err := write(path, ds.Sample(i)); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %s (%d values)\n", path, len(ds.Sample(i)))
		}
		return nil

	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
}
