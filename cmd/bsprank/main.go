// Command bsprank launches all ranks of a multi-process TCP BSP job on one
// machine: it picks a free loopback listen port per rank, expands the
// {rank}, {peers} and {nprocs} placeholders in the program arguments, and
// runs one process per rank with its output prefixed by the rank number.
//
// Example — a 4-rank similarityatscale job over localhost:
//
//	bsprank -n 4 -- similarityatscale -m 1000000 \
//	    -transport tcp -rank {rank} -peers {peers} a.txt b.txt c.txt
//
// The first rank to fail cancels the rest (they are killed, not left to
// time out), and bsprank exits with that rank's error; Ctrl-C kills the
// whole job. With -base-port the ports are base..base+n-1 instead of
// kernel-assigned free ports.
package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bsprank:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	n := 2
	host := "127.0.0.1"
	basePort := 0
	var prog []string
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-n", "--n":
			i++
			if i >= len(args) {
				return fmt.Errorf("-n needs a value")
			}
			v, err := strconv.Atoi(args[i])
			if err != nil {
				return fmt.Errorf("-n: %w", err)
			}
			n = v
		case "-host", "--host":
			i++
			if i >= len(args) {
				return fmt.Errorf("-host needs a value")
			}
			host = args[i]
		case "-base-port", "--base-port":
			i++
			if i >= len(args) {
				return fmt.Errorf("-base-port needs a value")
			}
			v, err := strconv.Atoi(args[i])
			if err != nil {
				return fmt.Errorf("-base-port: %w", err)
			}
			basePort = v
		case "--":
			prog = args[i+1:]
			i = len(args)
		default:
			return fmt.Errorf("unknown flag %q (program goes after --)", args[i])
		}
	}
	if n < 2 {
		return fmt.Errorf("-n must be at least 2, got %d", n)
	}
	if len(prog) == 0 {
		return fmt.Errorf("no program given; usage: bsprank -n 4 [-host H] [-base-port P] -- prog args...")
	}

	peers, err := pickPeers(host, basePort, n)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "bsprank: launching %d ranks: %s\n", n, strings.Join(peers, ","))

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var mu sync.Mutex // serialises prefixed output lines
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			if err := runRank(ctx, r, n, peers, prog, out, &mu); err != nil {
				errs[r] = err
				cancel() // first failure kills the surviving ranks
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			return fmt.Errorf("rank %d: %w", r, err)
		}
	}
	if err := ctx.Err(); err != nil {
		return err // interrupted from outside, no rank of its own failed
	}
	fmt.Fprintf(out, "bsprank: all %d ranks completed\n", n)
	return nil
}

// pickPeers assembles the rank-ordered listen address list: explicit
// base..base+n-1 ports, or n kernel-assigned free ports (bound and
// released — a launcher-grade reservation, not an airtight one).
func pickPeers(host string, basePort, n int) ([]string, error) {
	peers := make([]string, n)
	if basePort > 0 {
		for r := 0; r < n; r++ {
			peers[r] = net.JoinHostPort(host, strconv.Itoa(basePort+r))
		}
		return peers, nil
	}
	for r := 0; r < n; r++ {
		ln, err := net.Listen("tcp", net.JoinHostPort(host, "0"))
		if err != nil {
			return nil, fmt.Errorf("reserving port for rank %d: %w", r, err)
		}
		peers[r] = ln.Addr().String()
		defer ln.Close()
	}
	return peers, nil
}

func runRank(ctx context.Context, rank, n int, peers, prog []string, out io.Writer, mu *sync.Mutex) error {
	expanded := make([]string, len(prog))
	repl := strings.NewReplacer(
		"{rank}", strconv.Itoa(rank),
		"{peers}", strings.Join(peers, ","),
		"{nprocs}", strconv.Itoa(n),
	)
	for i, a := range prog {
		expanded[i] = repl.Replace(a)
	}

	cmd := exec.CommandContext(ctx, expanded[0], expanded[1:]...)
	// After a kill, don't wait on grandchildren that inherited the output
	// pipe (a killed shell's children keep it open indefinitely).
	cmd.WaitDelay = 5 * time.Second
	pr, pw := io.Pipe()
	cmd.Stdout = pw
	cmd.Stderr = pw
	var forward sync.WaitGroup
	forward.Add(1)
	go func() {
		defer forward.Done()
		sc := bufio.NewScanner(pr)
		sc.Buffer(make([]byte, 64*1024), 1024*1024)
		for sc.Scan() {
			mu.Lock()
			fmt.Fprintf(out, "[rank %d] %s\n", rank, sc.Text())
			mu.Unlock()
		}
	}()
	err := cmd.Run()
	pw.Close()
	forward.Wait()
	if err != nil && ctx.Err() != nil {
		// Killed by the launcher after another rank failed (or Ctrl-C):
		// report the cancellation, not the resulting kill signal.
		return nil
	}
	return err
}
