package main

import (
	"context"
	"strings"
	"testing"
)

func TestRunExpandsPlaceholders(t *testing.T) {
	var out strings.Builder
	err := run(context.Background(),
		[]string{"-n", "3", "--", "/bin/sh", "-c", "echo rank {rank} of {nprocs} peers {peers}"},
		&out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"launching 3 ranks",
		"rank 0 of 3 peers 127.0.0.1:",
		"rank 1 of 3",
		"rank 2 of 3",
		"all 3 ranks completed",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunFirstFailureCancelsRest(t *testing.T) {
	var out strings.Builder
	// Rank 1 exits nonzero immediately; the others sleep long enough that
	// only cancellation can end them within the test timeout.
	err := run(context.Background(),
		[]string{"-n", "3", "--", "/bin/sh", "-c", "if [ {rank} = 1 ]; then exit 7; fi; sleep 60"},
		&out)
	if err == nil {
		t.Fatal("failing rank reported no error")
	}
	if !strings.Contains(err.Error(), "rank 1") {
		t.Errorf("error %q does not identify rank 1", err)
	}
}

func TestRunRejectsBadUsage(t *testing.T) {
	var out strings.Builder
	cases := [][]string{
		{"-n", "1", "--", "true"}, // fewer than two ranks
		{"-n", "2"},               // no program
		{"-bogus", "--", "true"},  // unknown flag
		{"-n", "x", "--", "true"}, // non-numeric n
	}
	for _, args := range cases {
		if err := run(context.Background(), args, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunBasePortPeers(t *testing.T) {
	peers, err := pickPeers("10.0.0.5", 9100, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"10.0.0.5:9100", "10.0.0.5:9101", "10.0.0.5:9102"}
	for i := range want {
		if peers[i] != want[i] {
			t.Errorf("peer %d = %q, want %q", i, peers[i], want[i])
		}
	}
}
