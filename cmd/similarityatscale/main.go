// Command similarityatscale computes all-pairs Jaccard similarities between
// generic categorical data samples — the domain-agnostic use of the
// SimilarityAtScale algorithm the paper emphasises (Sections II-C to II-G).
//
// Each input file is one data sample; each non-empty line holds one
// non-negative integer attribute value (the paper's Listing 2: "One file
// line contains one data value"). The tool prints the similarity matrix or
// writes it as TSV.
//
// Example:
//
//	similarityatscale -m 1000000 -procs 4 -batches 2 -workers 1 -output sim.tsv a.txt b.txt c.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"genomeatscale/internal/core"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "similarityatscale:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("similarityatscale", flag.ContinueOnError)
	maxVal := fs.Uint64("m", 0, "number of possible attribute values (0 = derive from the data)")
	procs := fs.Int("procs", 1, "number of virtual BSP ranks")
	batches := fs.Int("batches", 1, "number of row batches")
	maskBits := fs.Int("mask-bits", 64, "bitmask compression width b")
	replication := fs.Int("replication", 1, "processor-grid replication factor c")
	workers := fs.Int("workers", 0, "shared-memory worker goroutines per process for the Gram kernel, packing and finalization (0 = one per CPU, 1 = serial)")
	denseThreshold := fs.Int("dense-threshold", 0, "stored-word count at which a packed column is held as a dense slab (0 = auto ≈ ¼ of the word rows, negative = always sparse)")
	output := fs.String("output", "", "write the similarity matrix to this TSV file (default: print)")
	distance := fs.Bool("distance", false, "report Jaccard distances (1 − J) instead of similarities")
	if err := fs.Parse(args); err != nil {
		return err
	}
	files := fs.Args()
	if len(files) < 2 {
		return fmt.Errorf("need at least two sample files, got %d", len(files))
	}

	names := make([]string, 0, len(files))
	samples := make([][]uint64, 0, len(files))
	var maxSeen uint64
	for _, path := range files {
		values, err := readValues(path)
		if err != nil {
			return err
		}
		for _, v := range values {
			if v > maxSeen {
				maxSeen = v
			}
		}
		names = append(names, strings.TrimSuffix(filepath.Base(path), filepath.Ext(path)))
		samples = append(samples, values)
	}
	m := *maxVal
	if m == 0 {
		m = maxSeen + 1
	}
	ds, err := core.NewInMemoryDataset(names, samples, m)
	if err != nil {
		return err
	}

	opts := core.Options{BatchCount: *batches, MaskBits: *maskBits, Procs: *procs, Replication: *replication, Workers: *workers, DenseThreshold: *denseThreshold}
	var res *core.Result
	if *procs > 1 {
		res, err = core.Compute(ds, opts)
	} else {
		res, err = core.ComputeSequential(ds, opts)
	}
	if err != nil {
		return err
	}

	matrix := res.S
	label := "similarity"
	if *distance {
		matrix = res.D
		label = "distance"
	}
	fmt.Fprintf(out, "computed %d×%d Jaccard %s matrix over m=%d attributes in %.3fs\n",
		res.N, res.N, label, m, res.Stats.TotalSeconds)

	if *output != "" {
		f, err := os.Create(*output)
		if err != nil {
			return err
		}
		defer f.Close()
		fmt.Fprintf(f, "sample\t%s\n", strings.Join(names, "\t"))
		for i, name := range names {
			cells := make([]string, res.N)
			for j := 0; j < res.N; j++ {
				cells[j] = fmt.Sprintf("%.6f", matrix.At(i, j))
			}
			fmt.Fprintf(f, "%s\t%s\n", name, strings.Join(cells, "\t"))
		}
		fmt.Fprintf(out, "%s matrix written to %s\n", label, *output)
		return nil
	}
	for i, name := range names {
		fmt.Fprintf(out, "%-24s", name)
		for j := 0; j < res.N; j++ {
			fmt.Fprintf(out, " %8.4f", matrix.At(i, j))
		}
		fmt.Fprintln(out)
	}
	return nil
}

func readValues(path string) ([]uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []uint64
	scanner := bufio.NewScanner(f)
	scanner.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		v, err := strconv.ParseUint(line, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, lineNo, err)
		}
		out = append(out, v)
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
