// Command similarityatscale computes all-pairs Jaccard similarities between
// generic categorical data samples — the domain-agnostic use of the
// SimilarityAtScale algorithm the paper emphasises (Sections II-C to II-G).
//
// Each input file is one data sample; each non-empty line holds one
// non-negative integer attribute value (the paper's Listing 2: "One file
// line contains one data value"). The tool prints the similarity matrix or
// writes it as TSV; with -top-k or -threshold it streams, retaining only
// the requested sample pairs instead of gathering the full matrix.
//
// With -dir the samples are not loaded up front: the directory's files
// (text or binary encoding, auto-detected) are read out-of-core during the
// run — prefetched -prefetch samples ahead of the scan, loaded in
// parallel, and evicted so at most ~2 prefetch windows stay resident — and
// a corrupt or unreadable file aborts the run with an error naming it
// instead of panicking. Out-of-core mode requires an explicit -m.
//
// Examples:
//
//	similarityatscale -m 1000000 -procs 4 -batches 2 -workers 1 -output sim.tsv a.txt b.txt c.txt
//	similarityatscale -m 1000000 -dir samples/ -pattern '*.smp' -prefetch 128 -top-k 20
//
// With -transport tcp the process runs as ONE rank of a multi-process BSP
// job: every process is started with identical flags except -rank, the
// peer list names each rank's listen address, and rank 0 assembles and
// prints the matrix while the other ranks report completion only. The
// cmd/bsprank launcher starts all ranks of such a job on one machine:
//
//	similarityatscale -m 1000000 -transport tcp -rank 0 -peers :9000,:9001 a.txt b.txt &
//	similarityatscale -m 1000000 -transport tcp -rank 1 -peers :9000,:9001 a.txt b.txt
package main

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"genomeatscale/internal/cliutil"
	"genomeatscale/internal/core"
	"genomeatscale/internal/output"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "similarityatscale:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := cliutil.NewFlagSet("similarityatscale")
	maxVal := fs.Uint64("m", 0, "number of possible attribute values (0 = derive from the data; required with -dir)")
	compute := cliutil.BindCompute(fs)
	transport := cliutil.BindTransport(fs)
	ingest := cliutil.BindIngest(fs)
	outPath := fs.String("output", "", "write the similarity matrix to this TSV file (default: print)")
	distance := fs.Bool("distance", false, "report Jaccard distances (1 − J) instead of similarities")
	indexFlags := cliutil.BindIndex(fs)
	statsJSON := cliutil.BindStatsJSON(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	files := fs.Args()

	var ds core.Dataset
	m := *maxVal
	switch {
	case ingest.Active():
		// Out-of-core: the files load lazily during the run — in parallel,
		// prefetched ahead of the scan, and evicted to stay within the
		// resident budget — so the collection never has to fit in memory.
		// The universe must be declared up front: deriving it would force a
		// full scan before the run.
		if len(files) != 0 {
			return fmt.Errorf("-dir and positional sample files are mutually exclusive")
		}
		if m == 0 {
			return fmt.Errorf("-dir needs an explicit attribute universe: pass -m")
		}
		dds, err := ingest.Open(m)
		if err != nil {
			return err
		}
		if dds.NumSamples() < 2 {
			return fmt.Errorf("need at least two sample files, got %d", dds.NumSamples())
		}
		ds = dds
	default:
		if len(files) < 2 {
			return fmt.Errorf("need at least two sample files, got %d", len(files))
		}
		names := make([]string, 0, len(files))
		samples := make([][]uint64, 0, len(files))
		var maxSeen uint64
		for _, path := range files {
			values, err := readValues(path)
			if err != nil {
				return err
			}
			for _, v := range values {
				if v > maxSeen {
					maxSeen = v
				}
			}
			names = append(names, strings.TrimSuffix(filepath.Base(path), filepath.Ext(path)))
			samples = append(samples, values)
		}
		if m == 0 {
			m = maxSeen + 1
		}
		var err error
		ds, err = core.NewInMemoryDataset(names, samples, m)
		if err != nil {
			return err
		}
	}

	if compute.Streaming() {
		if transport.TCP() {
			return fmt.Errorf("streaming mode (-top-k/-threshold) runs in-process; drop -transport tcp")
		}
		if *outPath != "" {
			return fmt.Errorf("streaming mode (-top-k/-threshold) does not gather the matrix; drop -output")
		}
		if *distance {
			return fmt.Errorf("streaming mode (-top-k/-threshold) reports similarity pairs (distance = 1 − jaccard); drop -distance")
		}
		res, pairs, err := compute.StreamPairs(context.Background(), ds)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "streamed %d×%d Jaccard similarity run over m=%d attributes in %.3fs (%d tiles)\n",
			res.N, res.N, m, res.Stats.TotalSeconds, res.Stats.TilesEmitted)
		cliutil.PrintTuning(out, res.Stats.Tuning)
		cliutil.PrintSketch(out, res.Stats.Sketch)
		cliutil.PrintIngest(out, res.Stats.Ingest)
		if err := cliutil.WriteStatsJSONFlag(out, *statsJSON, &res.Stats); err != nil {
			return err
		}
		if err := indexFlags.Write(out, ds, compute.Options()); err != nil {
			return err
		}
		fmt.Fprintf(out, "\n%d retained sample pairs:\n", len(pairs))
		return output.WritePairs(out, pairs)
	}

	opts := compute.Options()
	closeTransport, err := transport.Setup(&opts)
	if err != nil {
		return err
	}
	defer closeTransport()
	e, err := core.NewEngine(opts)
	if err != nil {
		return err
	}
	res, err := e.Similarity(context.Background(), ds)
	if err != nil {
		return err
	}

	if !transport.Root() {
		// Non-root TCP ranks hold no gathered matrix — rank 0 prints it
		// and writes the index/stats artifacts for the whole job.
		fmt.Fprintf(out, "rank %d of %d: run complete in %.3fs\n",
			*transport.Rank, opts.Procs, res.Stats.TotalSeconds)
		cliutil.PrintComm(out, &res.Stats)
		return nil
	}
	if err := cliutil.WriteStatsJSONFlag(out, *statsJSON, &res.Stats); err != nil {
		return err
	}
	if err := indexFlags.Write(out, ds, opts); err != nil {
		return err
	}

	matrix := res.S
	label := "similarity"
	if *distance {
		matrix = res.D
		label = "distance"
	}
	fmt.Fprintf(out, "computed %d×%d Jaccard %s matrix over m=%d attributes in %.3fs\n",
		res.N, res.N, label, m, res.Stats.TotalSeconds)
	cliutil.PrintTuning(out, res.Stats.Tuning)
	cliutil.PrintSketch(out, res.Stats.Sketch)
	cliutil.PrintIngest(out, res.Stats.Ingest)
	cliutil.PrintComm(out, &res.Stats)

	if *outPath != "" {
		if err := cliutil.WriteMatrixTSVFile(*outPath, res.Names, matrix); err != nil {
			return err
		}
		fmt.Fprintf(out, "%s matrix written to %s\n", label, *outPath)
		return nil
	}
	cliutil.PrintMatrix(out, res.Names, matrix)
	return nil
}

func readValues(path string) ([]uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []uint64
	scanner := bufio.NewScanner(f)
	scanner.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		v, err := strconv.ParseUint(line, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, lineNo, err)
		}
		out = append(out, v)
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
