package main

import (
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"genomeatscale/internal/cliutil"
	"genomeatscale/internal/index"
)

func writeSampleFile(t *testing.T, dir, name string, values []string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(strings.Join(values, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunPrintsSimilarity(t *testing.T) {
	dir := t.TempDir()
	a := writeSampleFile(t, dir, "a.txt", []string{"1", "2", "3", "# comment", ""})
	b := writeSampleFile(t, dir, "b.txt", []string{"2", "3", "4"})
	stdout, err := os.CreateTemp(dir, "stdout")
	if err != nil {
		t.Fatal(err)
	}
	defer stdout.Close()
	if err := run([]string{"-procs", "2", a, b}, stdout); err != nil {
		t.Fatal(err)
	}
	stdout.Seek(0, 0)
	content, _ := os.ReadFile(stdout.Name())
	if !strings.Contains(string(content), "0.5000") {
		t.Errorf("expected J=0.5 in output:\n%s", content)
	}
}

func TestRunWritesTSVAndDistance(t *testing.T) {
	dir := t.TempDir()
	a := writeSampleFile(t, dir, "a.txt", []string{"1", "2"})
	b := writeSampleFile(t, dir, "b.txt", []string{"1", "2"})
	outPath := filepath.Join(dir, "out.tsv")
	stdout, _ := os.CreateTemp(dir, "stdout")
	defer stdout.Close()
	if err := run([]string{"-distance", "-output", outPath, "-m", "100", a, b}, stdout); err != nil {
		t.Fatal(err)
	}
	content, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(content), "0.000000") {
		t.Errorf("identical samples should have distance 0:\n%s", content)
	}
}

func TestRunStreamingThreshold(t *testing.T) {
	dir := t.TempDir()
	a := writeSampleFile(t, dir, "a.txt", []string{"1", "2", "3"})
	b := writeSampleFile(t, dir, "b.txt", []string{"2", "3", "4"})
	c := writeSampleFile(t, dir, "c.txt", []string{"90", "91"})
	stdout, _ := os.CreateTemp(dir, "stdout")
	defer stdout.Close()
	if err := run([]string{"-threshold", "0.4", a, b, c}, stdout); err != nil {
		t.Fatal(err)
	}
	content, _ := os.ReadFile(stdout.Name())
	if !strings.Contains(string(content), "1 retained sample pairs") {
		t.Errorf("expected one retained pair, got:\n%s", content)
	}
	if !strings.Contains(string(content), "a\tb\t0.500000") {
		t.Errorf("expected the (a, b) pair line, got:\n%s", content)
	}
	// Streaming cannot be combined with -output.
	if err := run([]string{"-threshold", "0.4", "-output", dir + "/x.tsv", a, b}, stdout); err == nil {
		t.Error("streaming with -output should be rejected")
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	a := writeSampleFile(t, dir, "a.txt", []string{"1"})
	bad := writeSampleFile(t, dir, "bad.txt", []string{"xyz"})
	stdout, _ := os.CreateTemp(dir, "stdout")
	defer stdout.Close()
	if err := run([]string{a}, stdout); err == nil {
		t.Error("one file should be rejected")
	}
	if err := run([]string{a, bad}, stdout); err == nil {
		t.Error("non-numeric values should be rejected")
	}
	if err := run([]string{a, filepath.Join(dir, "missing.txt")}, stdout); err == nil {
		t.Error("missing file should be rejected")
	}
	// Explicit m smaller than the data must be rejected by the dataset layer.
	big := writeSampleFile(t, dir, "big.txt", []string{"1000"})
	if err := run([]string{"-m", "10", a, big}, stdout); err == nil {
		t.Error("out-of-universe values should be rejected")
	}
}

func TestReadValues(t *testing.T) {
	dir := t.TempDir()
	path := writeSampleFile(t, dir, "v.txt", []string{"7", "  8  ", "#skip", "9"})
	got, err := readValues(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 7 || got[2] != 9 {
		t.Errorf("readValues = %v", got)
	}
}

// TestRunTCPTransport runs the CLI as a 2-rank TCP job — both ranks
// in-process through run(), exactly the per-process entry bsprank spawns —
// and checks rank 0 prints the matrix while rank 1 only reports completion.
func TestRunTCPTransport(t *testing.T) {
	dir := t.TempDir()
	a := writeSampleFile(t, dir, "a.txt", []string{"1", "2", "3"})
	b := writeSampleFile(t, dir, "b.txt", []string{"2", "3", "4"})

	ports := make([]string, 2)
	for i := range ports {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ports[i] = ln.Addr().String()
		ln.Close()
	}
	peers := strings.Join(ports, ",")

	outs := make([]*os.File, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		outs[r], _ = os.CreateTemp(dir, "stdout")
		defer outs[r].Close()
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = run([]string{
				"-transport", "tcp", "-rank", fmt.Sprint(r), "-peers", peers,
				"-batches", "2", "-workers", "1", a, b,
			}, outs[r])
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	root, _ := os.ReadFile(outs[0].Name())
	if !strings.Contains(string(root), "0.5000") {
		t.Errorf("rank 0 output missing J=0.5 matrix:\n%s", root)
	}
	if !strings.Contains(string(root), "transport: ") {
		t.Errorf("rank 0 output missing transport stats line:\n%s", root)
	}
	other, _ := os.ReadFile(outs[1].Name())
	if !strings.Contains(string(other), "rank 1 of 2: run complete") {
		t.Errorf("rank 1 output missing completion line:\n%s", other)
	}
	if strings.Contains(string(other), "0.5000") {
		t.Errorf("rank 1 printed a matrix it should not hold:\n%s", other)
	}
}

func TestRunTransportFlagErrors(t *testing.T) {
	dir := t.TempDir()
	a := writeSampleFile(t, dir, "a.txt", []string{"1"})
	b := writeSampleFile(t, dir, "b.txt", []string{"2"})
	stdout, _ := os.CreateTemp(dir, "stdout")
	defer stdout.Close()
	cases := [][]string{
		{"-transport", "tcp", a, b},                                          // no peers
		{"-transport", "tcp", "-peers", "h:1", a, b},                         // one peer
		{"-transport", "tcp", "-rank", "5", "-peers", "h:1,h:2", a, b},       // rank out of range
		{"-rank", "1", a, b},                                                 // rank without tcp
		{"-peers", "h:1,h:2", a, b},                                          // peers without tcp
		{"-transport", "carrier-pigeon", a, b},                               // unknown backend
		{"-transport", "tcp", "-peers", "h:1,h:2", "-threshold", ".5", a, b}, // streaming over tcp
	}
	for _, args := range cases {
		if err := run(args, stdout); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestRunIndexOutAndStatsJSON checks the index/stats artifacts: -index-out
// must emit a file that index.Open can serve (with the run's own similarity
// for a sample-vs-corpus query), and -stats-json must emit JSON that
// cliutil.ReadStatsJSON round-trips.
func TestRunIndexOutAndStatsJSON(t *testing.T) {
	dir := t.TempDir()
	a := writeSampleFile(t, dir, "a.txt", []string{"1", "2", "3"})
	b := writeSampleFile(t, dir, "b.txt", []string{"2", "3", "4"})
	c := writeSampleFile(t, dir, "c.txt", []string{"90", "91"})
	idxPath := filepath.Join(dir, "corpus.idx")
	statsPath := filepath.Join(dir, "stats.json")
	stdout, _ := os.CreateTemp(dir, "stdout")
	defer stdout.Close()

	args := []string{"-index-out", idxPath, "-index-sketch-k", "4", "-stats-json", statsPath, a, b, c}
	if err := run(args, stdout); err != nil {
		t.Fatal(err)
	}
	content, _ := os.ReadFile(stdout.Name())
	if !strings.Contains(string(content), "index written to") {
		t.Errorf("missing index confirmation line:\n%s", content)
	}

	sf, err := os.Open(statsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()
	stats, err := cliutil.ReadStatsJSON(sf)
	if err != nil {
		t.Fatalf("ReadStatsJSON: %v", err)
	}
	if stats.TotalSeconds <= 0 || stats.Batches < 1 {
		t.Errorf("implausible stats: %+v", stats)
	}

	corpus, err := index.Open(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	defer corpus.Close()
	if corpus.Samples() != 3 || corpus.SketchK() != 4 {
		t.Fatalf("index has %d samples, sketch k=%d", corpus.Samples(), corpus.SketchK())
	}
	// Query sample a's values against the index: the best non-self
	// neighbour must be b at the J=0.5 the batch run printed.
	neighbors, err := corpus.Query(context.Background(), []uint64{1, 2, 3}, index.QueryOptions{TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(neighbors) != 2 || neighbors[0].Name != "a" || neighbors[0].Similarity != 1 {
		t.Fatalf("self neighbour wrong: %+v", neighbors)
	}
	if n := neighbors[1]; n.Name != "b" || n.Similarity != 0.5 {
		t.Fatalf("expected (b, 0.5) neighbour, got %+v", n)
	}

	// The same run in streaming mode must emit the same artifacts.
	idx2 := filepath.Join(dir, "stream.idx")
	if err := run([]string{"-threshold", "0.4", "-index-out", idx2, "-stats-json", "-", a, b, c}, stdout); err != nil {
		t.Fatal(err)
	}
	corpus2, err := index.Open(idx2)
	if err != nil {
		t.Fatal(err)
	}
	defer corpus2.Close()
	if corpus2.Samples() != 3 {
		t.Fatalf("streaming index has %d samples", corpus2.Samples())
	}
}
