package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeSampleFile(t *testing.T, dir, name string, values []string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(strings.Join(values, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunPrintsSimilarity(t *testing.T) {
	dir := t.TempDir()
	a := writeSampleFile(t, dir, "a.txt", []string{"1", "2", "3", "# comment", ""})
	b := writeSampleFile(t, dir, "b.txt", []string{"2", "3", "4"})
	stdout, err := os.CreateTemp(dir, "stdout")
	if err != nil {
		t.Fatal(err)
	}
	defer stdout.Close()
	if err := run([]string{"-procs", "2", a, b}, stdout); err != nil {
		t.Fatal(err)
	}
	stdout.Seek(0, 0)
	content, _ := os.ReadFile(stdout.Name())
	if !strings.Contains(string(content), "0.5000") {
		t.Errorf("expected J=0.5 in output:\n%s", content)
	}
}

func TestRunWritesTSVAndDistance(t *testing.T) {
	dir := t.TempDir()
	a := writeSampleFile(t, dir, "a.txt", []string{"1", "2"})
	b := writeSampleFile(t, dir, "b.txt", []string{"1", "2"})
	outPath := filepath.Join(dir, "out.tsv")
	stdout, _ := os.CreateTemp(dir, "stdout")
	defer stdout.Close()
	if err := run([]string{"-distance", "-output", outPath, "-m", "100", a, b}, stdout); err != nil {
		t.Fatal(err)
	}
	content, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(content), "0.000000") {
		t.Errorf("identical samples should have distance 0:\n%s", content)
	}
}

func TestRunStreamingThreshold(t *testing.T) {
	dir := t.TempDir()
	a := writeSampleFile(t, dir, "a.txt", []string{"1", "2", "3"})
	b := writeSampleFile(t, dir, "b.txt", []string{"2", "3", "4"})
	c := writeSampleFile(t, dir, "c.txt", []string{"90", "91"})
	stdout, _ := os.CreateTemp(dir, "stdout")
	defer stdout.Close()
	if err := run([]string{"-threshold", "0.4", a, b, c}, stdout); err != nil {
		t.Fatal(err)
	}
	content, _ := os.ReadFile(stdout.Name())
	if !strings.Contains(string(content), "1 retained sample pairs") {
		t.Errorf("expected one retained pair, got:\n%s", content)
	}
	if !strings.Contains(string(content), "a\tb\t0.500000") {
		t.Errorf("expected the (a, b) pair line, got:\n%s", content)
	}
	// Streaming cannot be combined with -output.
	if err := run([]string{"-threshold", "0.4", "-output", dir + "/x.tsv", a, b}, stdout); err == nil {
		t.Error("streaming with -output should be rejected")
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	a := writeSampleFile(t, dir, "a.txt", []string{"1"})
	bad := writeSampleFile(t, dir, "bad.txt", []string{"xyz"})
	stdout, _ := os.CreateTemp(dir, "stdout")
	defer stdout.Close()
	if err := run([]string{a}, stdout); err == nil {
		t.Error("one file should be rejected")
	}
	if err := run([]string{a, bad}, stdout); err == nil {
		t.Error("non-numeric values should be rejected")
	}
	if err := run([]string{a, filepath.Join(dir, "missing.txt")}, stdout); err == nil {
		t.Error("missing file should be rejected")
	}
	// Explicit m smaller than the data must be rejected by the dataset layer.
	big := writeSampleFile(t, dir, "big.txt", []string{"1000"})
	if err := run([]string{"-m", "10", a, big}, stdout); err == nil {
		t.Error("out-of-universe values should be rejected")
	}
}

func TestReadValues(t *testing.T) {
	dir := t.TempDir()
	path := writeSampleFile(t, dir, "v.txt", []string{"7", "  8  ", "#skip", "9"})
	got, err := readValues(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 7 || got[2] != 9 {
		t.Errorf("readValues = %v", got)
	}
}
