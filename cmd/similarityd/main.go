// Command similarityd serves similarity queries against a persistent index
// built by genomeatscale/similarityatscale -index-out. It is the
// long-running counterpart of the batch CLIs: the index is opened without
// loading (mmap; -load for eager loading), queries run against the packed
// columns with the exact popcount kernels, and new samples can be appended
// incrementally — each append extends the corpus by one durable segment,
// no recompute.
//
// Endpoints:
//
//	GET  /healthz            liveness + sample count
//	GET  /v1/query?values=1,2,3&top_k=5&threshold=0.4
//	POST /v1/query           {"values":[...],"top_k":5,"threshold":0.4}
//	POST /v1/append          {"name":"s","values":[...],"top_k":5}
//	GET  /v1/corpus[?names=1] corpus shape, counters, build RunStats
//	GET  /metrics            Prometheus text exposition
//
// Shutdown is graceful: SIGINT/SIGTERM stops the listener and drains
// in-flight requests for -drain-timeout before forcing the process down.
package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"genomeatscale/internal/cliutil"
	"genomeatscale/internal/index"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "similarityd:", err)
		os.Exit(1)
	}
}

// run starts the service and blocks until ctx is cancelled (signal) or the
// listener fails. Tests drive it directly with a cancellable context.
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := cliutil.NewFlagSet("similarityd")
	indexPath := fs.String("index", "", "index file to serve (build with genomeatscale -index-out)")
	addr := fs.String("addr", "127.0.0.1:8044", "listen address")
	load := fs.Bool("load", false, "read the index fully into memory instead of mmap-opening it")
	workers := fs.Int("workers", 0, "popcount workers per query (0 = all cores)")
	maxQueries := fs.Int("max-queries", 4, "queries computing concurrently (admission limit)")
	readOnly := fs.Bool("read-only", false, "reject /v1/append")
	drain := fs.Duration("drain-timeout", 10*time.Second, "in-flight drain budget on shutdown")
	buildStats := fs.String("build-stats", "", "RunStats JSON from the batch build (-stats-json output) to expose in /metrics and /v1/corpus")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *indexPath == "" {
		return errors.New("missing -index (build one with genomeatscale -index-out)")
	}

	var (
		corpus *index.Corpus
		err    error
	)
	if *load {
		corpus, err = index.Load(*indexPath)
	} else {
		corpus, err = index.Open(*indexPath)
	}
	if err != nil {
		return err
	}
	// Close unmaps the index, so it must only run once every handler that
	// might read mapped pages has finished. Exit paths that can leave
	// handlers in flight (listener failure, drain timeout) clear the flag
	// and let process teardown reclaim the mapping instead of risking a
	// fault under a still-running query.
	closeCorpus := true
	defer func() {
		if closeCorpus {
			corpus.Close()
		}
	}()

	srv := newServer(corpus, *workers, *maxQueries, *readOnly, nil)
	if *buildStats != "" {
		bs, err := loadBuildStats(*buildStats)
		if err != nil {
			return err
		}
		srv.buildStats = bs
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	mode := "mmap"
	if *load {
		mode = "loaded"
	}
	fmt.Fprintf(out, "similarityd: serving %d samples (%d segments, %s) on %s\n",
		corpus.Samples(), corpus.Segments(), mode, ln.Addr())

	httpSrv := &http.Server{Handler: srv.routes()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		// Serve failed (listener error); requests it already admitted may
		// still be running.
		closeCorpus = false
		return err
	case <-ctx.Done():
	}
	fmt.Fprintf(out, "similarityd: shutting down, draining for up to %v\n", *drain)
	// Shutdown closes the listener and waits for in-flight requests; it
	// does not cancel their contexts, so admitted queries run to
	// completion within the drain budget.
	//gas:detached the run ctx is already cancelled here (SIGTERM); the drain deadline must outlive it or Shutdown would return immediately
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		// Close aborts the remaining connections but does not wait for
		// their handlers, so the corpus must stay mapped.
		httpSrv.Close()
		closeCorpus = false
		return fmt.Errorf("drain exceeded %v: %w", *drain, err)
	}
	<-serveErr // Serve has returned http.ErrServerClosed
	fmt.Fprintln(out, "similarityd: drained, exiting")
	return nil
}
