package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"genomeatscale/internal/cliutil"
	"genomeatscale/internal/core"
	"genomeatscale/internal/index"
)

// server is the long-running query service over one index.Corpus. Handlers
// are safe for concurrent use: the corpus serialises appends internally
// and queries are lock-free; the server adds a semaphore bounding the
// number of queries computing at once (each query already parallelises
// internally via internal/par, so admitting an unbounded number would
// oversubscribe the popcount workers).
type server struct {
	corpus     *index.Corpus
	workers    int           // per-query popcount parallelism
	sem        chan struct{} // concurrent-query limiter
	readOnly   bool
	buildStats *core.RunStats // optional batch-build RunStats (-build-stats)
	started    time.Time

	requests   atomic.Int64
	inFlight   atomic.Int64
	httpErrors atomic.Int64
	queryNanos atomic.Int64

	// queryDelay stalls query execution after admission — a test hook for
	// exercising graceful drain with a request reliably in flight.
	queryDelay time.Duration
}

func newServer(corpus *index.Corpus, workers, maxConcurrent int, readOnly bool, buildStats *core.RunStats) *server {
	if maxConcurrent < 1 {
		maxConcurrent = 1
	}
	return &server{
		corpus:     corpus,
		workers:    workers,
		sem:        make(chan struct{}, maxConcurrent),
		readOnly:   readOnly,
		buildStats: buildStats,
		started:    time.Now(),
	}
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.track(s.handleHealthz))
	mux.HandleFunc("/v1/query", s.track(s.handleQuery))
	mux.HandleFunc("/v1/append", s.track(s.handleAppend))
	mux.HandleFunc("/v1/corpus", s.track(s.handleCorpus))
	mux.HandleFunc("/metrics", s.track(s.handleMetrics))
	return mux
}

// track counts requests and in-flight work around a handler. The request
// context doubles as the cancellation signal for query compute: a client
// that disconnects aborts its popcount loop via par.ForEachCtx.
func (s *server) track(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		s.inFlight.Add(1)
		defer s.inFlight.Add(-1)
		h(w, r)
	}
}

func (s *server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *server) fail(w http.ResponseWriter, status int, format string, args ...any) {
	s.httpErrors.Add(1)
	s.writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"samples":        s.corpus.Samples(),
		"uptime_seconds": time.Since(s.started).Seconds(),
	})
}

// queryRequest is the /v1/query body (POST) — GET maps the same fields
// from URL parameters (values as a comma-separated list) for curl use.
type queryRequest struct {
	Values    []uint64 `json:"values"`
	TopK      int      `json:"top_k"`
	Threshold float64  `json:"threshold"`
	NoSketch  bool     `json:"no_sketch"`
}

type queryResponse struct {
	Neighbors      []index.Neighbor `json:"neighbors"`
	Candidates     int              `json:"candidates"`
	ElapsedSeconds float64          `json:"elapsed_seconds"`
}

func (s *server) parseQueryRequest(r *http.Request) (queryRequest, error) {
	var req queryRequest
	switch r.Method {
	case http.MethodPost:
		dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 64<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return req, fmt.Errorf("decoding body: %w", err)
		}
	case http.MethodGet:
		q := r.URL.Query()
		if raw := q.Get("values"); raw != "" {
			for _, part := range strings.Split(raw, ",") {
				v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
				if err != nil {
					return req, fmt.Errorf("parsing values: %w", err)
				}
				req.Values = append(req.Values, v)
			}
		}
		var err error
		if raw := q.Get("top_k"); raw != "" {
			if req.TopK, err = strconv.Atoi(raw); err != nil {
				return req, fmt.Errorf("parsing top_k: %w", err)
			}
		}
		if raw := q.Get("threshold"); raw != "" {
			if req.Threshold, err = strconv.ParseFloat(raw, 64); err != nil {
				return req, fmt.Errorf("parsing threshold: %w", err)
			}
		}
		req.NoSketch = q.Get("no_sketch") == "1" || q.Get("no_sketch") == "true"
	default:
		return req, fmt.Errorf("method %s not allowed", r.Method)
	}
	return req, nil
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	req, err := s.parseQueryRequest(r)
	if err != nil {
		status := http.StatusBadRequest
		if strings.Contains(err.Error(), "not allowed") {
			status = http.StatusMethodNotAllowed
		}
		s.fail(w, status, "%v", err)
		return
	}
	ctx := r.Context()
	// Admission: block until a query slot frees up or the client leaves.
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-ctx.Done():
		s.fail(w, http.StatusServiceUnavailable, "cancelled while waiting for a query slot")
		return
	}
	if s.queryDelay > 0 {
		time.Sleep(s.queryDelay)
	}
	start := time.Now()
	neighbors, err := s.corpus.Query(ctx, req.Values, index.QueryOptions{
		TopK:      req.TopK,
		Threshold: req.Threshold,
		Workers:   s.workers,
		NoSketch:  req.NoSketch,
	})
	elapsed := time.Since(start)
	s.queryNanos.Add(int64(elapsed))
	if err != nil {
		status := http.StatusBadRequest
		if ctx.Err() != nil {
			status = http.StatusServiceUnavailable
		}
		s.fail(w, status, "query: %v", err)
		return
	}
	if neighbors == nil {
		neighbors = []index.Neighbor{}
	}
	s.writeJSON(w, http.StatusOK, queryResponse{
		Neighbors:      neighbors,
		Candidates:     s.corpus.Samples(),
		ElapsedSeconds: elapsed.Seconds(),
	})
}

type appendRequest struct {
	Name   string   `json:"name"`
	Values []uint64 `json:"values"`
	// TopK, when positive, also returns the new sample's top-k neighbors
	// among the resident samples — the one-row-band Gram extension computed
	// at append time. The query and the append are not atomic: under
	// concurrent appends the neighbors reflect the corpus as of the query,
	// which may already include samples appended after this request began.
	TopK      int     `json:"top_k"`
	Threshold float64 `json:"threshold"`
}

type appendResponse struct {
	Sample    int              `json:"sample"`
	Samples   int              `json:"samples"`
	Neighbors []index.Neighbor `json:"neighbors,omitempty"`
}

func (s *server) handleAppend(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	if s.readOnly {
		s.fail(w, http.StatusForbidden, "server is read-only")
		return
	}
	var req appendRequest
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "decoding body: %v", err)
		return
	}
	if req.Name == "" {
		s.fail(w, http.StatusBadRequest, "missing sample name")
		return
	}
	var neighbors []index.Neighbor
	if req.TopK > 0 || req.Threshold > 0 {
		// The neighbor query costs the same popcount work as /v1/query, so
		// it competes for the same admission slots — otherwise concurrent
		// appends could oversubscribe the popcount workers the limiter
		// exists to bound.
		ctx := r.Context()
		select {
		case s.sem <- struct{}{}:
		case <-ctx.Done():
			s.fail(w, http.StatusServiceUnavailable, "cancelled while waiting for a query slot")
			return
		}
		var err error
		neighbors, err = s.corpus.Query(ctx, req.Values, index.QueryOptions{
			TopK:      req.TopK,
			Threshold: req.Threshold,
			Workers:   s.workers,
		})
		<-s.sem
		if err != nil {
			status := http.StatusBadRequest
			if ctx.Err() != nil {
				status = http.StatusServiceUnavailable
			}
			s.fail(w, status, "neighbor query: %v", err)
			return
		}
	}
	id, err := s.corpus.Append(req.Name, req.Values)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, "append: %v", err)
		return
	}
	s.writeJSON(w, http.StatusOK, appendResponse{
		Sample:    id,
		Samples:   s.corpus.Samples(),
		Neighbors: neighbors,
	})
}

type corpusResponse struct {
	Path        string         `json:"path"`
	Samples     int            `json:"samples"`
	Segments    int            `json:"segments"`
	B           int            `json:"b"`
	SketchK     int            `json:"sketch_k"`
	MemoryWords int64          `json:"memory_words"`
	Counters    index.Counters `json:"counters"`
	Names       []string       `json:"names,omitempty"`
	BuildStats  *core.RunStats `json:"build_stats,omitempty"`
}

func (s *server) handleCorpus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	resp := corpusResponse{
		Path:        s.corpus.Path(),
		Samples:     s.corpus.Samples(),
		Segments:    s.corpus.Segments(),
		B:           s.corpus.B(),
		SketchK:     s.corpus.SketchK(),
		MemoryWords: s.corpus.MemoryWords(),
		Counters:    s.corpus.Counters(),
		BuildStats:  s.buildStats,
	}
	if v := r.URL.Query().Get("names"); v == "1" || v == "true" {
		resp.Names = s.corpus.Names()
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleMetrics renders the Prometheus text exposition format by hand —
// the format is a stable line protocol and the stdlib-only constraint
// rules out the client library. Sources: the corpus's operation counters,
// the server's HTTP counters, and (when provided) the batch build's
// RunStats/IngestStats re-read from the -stats-json artifact.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	cts := s.corpus.Counters()
	type metric struct {
		name, typ, help string
		value           float64
	}
	m := []metric{
		{"similarityd_queries_total", "counter", "Queries executed against the corpus.", float64(cts.Queries)},
		{"similarityd_appends_total", "counter", "Samples appended to the corpus.", float64(cts.Appends)},
		{"similarityd_popcounts_total", "counter", "Exact query-column popcounts computed.", float64(cts.Popcounts)},
		{"similarityd_sketch_skips_total", "counter", "Samples skipped by the MinHash gate.", float64(cts.SketchSkips)},
		{"similarityd_query_samples_total", "counter", "Corpus samples considered across all queries.", float64(cts.QuerySamples)},
		{"similarityd_query_seconds_total", "counter", "Wall-clock seconds spent computing queries.", float64(s.queryNanos.Load()) / 1e9},
		{"similarityd_http_requests_total", "counter", "HTTP requests received.", float64(s.requests.Load())},
		{"similarityd_http_errors_total", "counter", "HTTP error responses sent.", float64(s.httpErrors.Load())},
		{"similarityd_http_in_flight", "gauge", "HTTP requests currently being served.", float64(s.inFlight.Load())},
		{"similarityd_corpus_samples", "gauge", "Samples resident in the corpus.", float64(s.corpus.Samples())},
		{"similarityd_corpus_segments", "gauge", "Segments in the corpus (1 + appends since build).", float64(s.corpus.Segments())},
		{"similarityd_corpus_memory_words", "gauge", "Packed storage footprint in 64-bit words.", float64(s.corpus.MemoryWords())},
		{"similarityd_uptime_seconds", "gauge", "Seconds since the server started.", time.Since(s.started).Seconds()},
	}
	if bs := s.buildStats; bs != nil {
		m = append(m,
			metric{"similarityd_build_seconds", "gauge", "Wall-clock seconds of the batch build that produced the index.", bs.TotalSeconds},
			metric{"similarityd_build_batches", "gauge", "Row batches the build processed.", float64(bs.Batches)},
			metric{"similarityd_build_indicator_nonzeros", "gauge", "nnz(A) of the built corpus.", float64(bs.IndicatorNonzeros)},
			metric{"similarityd_build_tiles_emitted", "gauge", "Tiles the build streamed to its sink.", float64(bs.TilesEmitted)},
		)
		if bs.Ingest != nil {
			m = append(m, metric{"similarityd_build_ingest_loads", "gauge", "Sample loads performed by the build's out-of-core ingest.", float64(bs.Ingest.Loads)})
		}
	}
	sort.Slice(m, func(i, j int) bool { return m[i].name < m[j].name })
	for _, mt := range m {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %v\n", mt.name, mt.help, mt.name, mt.typ, mt.name, mt.value)
	}
}

// loadBuildStats reads a RunStats JSON artifact written by a batch CLI's
// -stats-json flag.
func loadBuildStats(path string) (*core.RunStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return cliutil.ReadStatsJSON(f)
}
