package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"genomeatscale/internal/core"
	"genomeatscale/internal/index"
	"genomeatscale/internal/tile"
)

// testCorpus builds a small random corpus and returns the source samples
// alongside it.
func testCorpus(t *testing.T, n, space int, sketchK int) ([]string, [][]uint64, *index.Corpus) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(n)*1000 + int64(sketchK)))
	names := make([]string, n)
	samples := make([][]uint64, n)
	for i := range samples {
		for v := 0; v < space; v++ {
			if rng.Float64() < 0.12 {
				samples[i] = append(samples[i], uint64(v))
			}
		}
		names[i] = fmt.Sprintf("s%03d", i)
	}
	ds, err := core.NewInMemoryDataset(names, samples, uint64(space))
	if err != nil {
		t.Fatalf("dataset: %v", err)
	}
	c, err := index.Build(ds, index.Options{SketchK: sketchK})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return names, samples, c
}

func postJSON(t *testing.T, ts *httptest.Server, path string, body any, into any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	if into != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("decoding %s response: %v", path, err)
		}
	}
	return resp
}

func getJSON(t *testing.T, ts *httptest.Server, path string, into any) *http.Response {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if into != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("decoding %s response: %v", path, err)
		}
	}
	return resp
}

func TestEndpoints(t *testing.T) {
	_, samples, c := testCorpus(t, 12, 200, 4)
	s := newServer(c, 1, 2, false, nil)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	var health struct {
		Status  string `json:"status"`
		Samples int    `json:"samples"`
	}
	if resp := getJSON(t, ts, "/healthz", &health); resp.StatusCode != 200 {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	if health.Status != "ok" || health.Samples != 12 {
		t.Fatalf("healthz %+v", health)
	}

	// POST and GET query forms must agree exactly.
	var viaPost, viaGet queryResponse
	postJSON(t, ts, "/v1/query", queryRequest{Values: samples[0], TopK: 5}, &viaPost)
	vals := make([]string, len(samples[0]))
	for i, v := range samples[0] {
		vals[i] = fmt.Sprint(v)
	}
	getJSON(t, ts, "/v1/query?top_k=5&values="+strings.Join(vals, ","), &viaGet)
	if !reflect.DeepEqual(viaPost.Neighbors, viaGet.Neighbors) {
		t.Fatalf("GET and POST queries disagree:\n%v\n%v", viaPost.Neighbors, viaGet.Neighbors)
	}
	if len(viaPost.Neighbors) != 5 || viaPost.Neighbors[0].Sample != 0 || viaPost.Neighbors[0].Similarity != 1 {
		t.Fatalf("self query neighbors %+v", viaPost.Neighbors)
	}

	var app appendResponse
	postJSON(t, ts, "/v1/append", appendRequest{Name: "new", Values: samples[3], TopK: 3}, &app)
	if app.Sample != 12 || app.Samples != 13 {
		t.Fatalf("append response %+v", app)
	}
	if len(app.Neighbors) != 3 || app.Neighbors[0].Sample != 3 || app.Neighbors[0].Similarity != 1 {
		t.Fatalf("append neighbors %+v (want sample 3 as a perfect match)", app.Neighbors)
	}

	var corpus corpusResponse
	getJSON(t, ts, "/v1/corpus?names=1", &corpus)
	if corpus.Samples != 13 || corpus.Segments != 2 || corpus.B != 64 || corpus.SketchK != 4 {
		t.Fatalf("corpus response %+v", corpus)
	}
	if len(corpus.Names) != 13 || corpus.Names[12] != "new" {
		t.Fatalf("corpus names %v", corpus.Names)
	}
	if corpus.Counters.Queries == 0 || corpus.MemoryWords <= 0 {
		t.Fatalf("corpus counters %+v", corpus)
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	metrics := buf.String()
	for _, want := range []string{
		"similarityd_queries_total",
		"similarityd_appends_total 1",
		"similarityd_corpus_samples 13",
		"similarityd_corpus_segments 2",
		"# TYPE similarityd_http_requests_total counter",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, metrics)
		}
	}
}

func TestEndpointErrors(t *testing.T) {
	_, _, c := testCorpus(t, 5, 100, 0)
	s := newServer(c, 1, 1, false, nil)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	cases := []struct {
		name   string
		do     func() *http.Response
		status int
	}{
		{"query bad json", func() *http.Response {
			resp, _ := ts.Client().Post(ts.URL+"/v1/query", "application/json", strings.NewReader("{"))
			return resp
		}, http.StatusBadRequest},
		{"query unknown field", func() *http.Response {
			resp, _ := ts.Client().Post(ts.URL+"/v1/query", "application/json", strings.NewReader(`{"nope":1}`))
			return resp
		}, http.StatusBadRequest},
		{"query bad values param", func() *http.Response {
			resp, _ := ts.Client().Get(ts.URL + "/v1/query?values=a,b")
			return resp
		}, http.StatusBadRequest},
		{"query negative topk", func() *http.Response {
			resp, _ := ts.Client().Get(ts.URL + "/v1/query?top_k=-2")
			return resp
		}, http.StatusBadRequest},
		{"query delete method", func() *http.Response {
			req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/query", nil)
			resp, _ := ts.Client().Do(req)
			return resp
		}, http.StatusMethodNotAllowed},
		{"append get method", func() *http.Response {
			resp, _ := ts.Client().Get(ts.URL + "/v1/append")
			return resp
		}, http.StatusMethodNotAllowed},
		{"append missing name", func() *http.Response {
			resp, _ := ts.Client().Post(ts.URL+"/v1/append", "application/json", strings.NewReader(`{"values":[1]}`))
			return resp
		}, http.StatusBadRequest},
		{"corpus post method", func() *http.Response {
			resp, _ := ts.Client().Post(ts.URL+"/v1/corpus", "application/json", nil)
			return resp
		}, http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		resp := tc.do()
		if resp == nil {
			t.Fatalf("%s: no response", tc.name)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
	}
	if s.httpErrors.Load() == 0 {
		t.Fatal("error counter never incremented")
	}

	ro := newServer(c, 1, 1, true, nil)
	tsRO := httptest.NewServer(ro.routes())
	defer tsRO.Close()
	resp, _ := tsRO.Client().Post(tsRO.URL+"/v1/append", "application/json",
		strings.NewReader(`{"name":"x","values":[1]}`))
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("read-only append status %d, want 403", resp.StatusCode)
	}
}

// TestServedTopKMatchesBatch is the serving-vs-batch equivalence satellite:
// pairs reconstructed from /v1/query responses (through their JSON
// round-trip) are byte-identical to a batch engine run streamed into a
// TopK sink — Go's shortest-float JSON encoding round-trips float64
// exactly, so even the similarity bits survive the HTTP hop.
func TestServedTopKMatchesBatch(t *testing.T) {
	names, samples, c := testCorpus(t, 16, 220, 0)
	ds, err := core.NewInMemoryDataset(names, samples, 220)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(core.Options{BatchCount: 2, MaskBits: 64, Procs: 1, Replication: 1})
	if err != nil {
		t.Fatal(err)
	}
	const k = 12
	sink := tile.NewTopK(k)
	if _, err := eng.Stream(context.Background(), ds, sink); err != nil {
		t.Fatal(err)
	}
	want := sink.Pairs()

	s := newServer(c, 0, 4, false, nil)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()
	var pairs []tile.Pair
	for q := range samples {
		var resp queryResponse
		postJSON(t, ts, "/v1/query", queryRequest{Values: samples[q]}, &resp)
		for _, p := range index.TopPairs(q, resp.Neighbors) {
			if p.I == q {
				pairs = append(pairs, p)
			}
		}
	}
	tile.SortPairs(pairs)
	if len(pairs) > k {
		pairs = pairs[:k]
	}
	if !reflect.DeepEqual(pairs, want) {
		t.Fatalf("served pairs differ from batch TopK\ngot  %v\nwant %v", pairs, want)
	}
}

// TestServedAppendMatchesRebuild: appending over HTTP then querying gives
// results identical to serving a corpus rebuilt from scratch with the
// appended samples included — sketch gate on and off.
func TestServedAppendMatchesRebuild(t *testing.T) {
	for _, sketchK := range []int{0, 8} {
		names, samples, _ := testCorpus(t, 14, 200, sketchK)
		partDS, err := core.NewInMemoryDataset(names[:11], samples[:11], 200)
		if err != nil {
			t.Fatal(err)
		}
		part, err := index.Build(partDS, index.Options{SketchK: sketchK})
		if err != nil {
			t.Fatal(err)
		}
		fullDS, err := core.NewInMemoryDataset(names, samples, 200)
		if err != nil {
			t.Fatal(err)
		}
		full, err := index.Build(fullDS, index.Options{SketchK: sketchK})
		if err != nil {
			t.Fatal(err)
		}

		tsAppend := httptest.NewServer(newServer(part, 1, 2, false, nil).routes())
		defer tsAppend.Close()
		tsRebuild := httptest.NewServer(newServer(full, 1, 2, false, nil).routes())
		defer tsRebuild.Close()

		for i := 11; i < 14; i++ {
			postJSON(t, tsAppend, "/v1/append", appendRequest{Name: names[i], Values: samples[i]}, nil)
		}
		for _, req := range []queryRequest{
			{Values: samples[2]},
			{Values: samples[12], TopK: 6},
			{Values: samples[5], Threshold: 0.15},
			{Values: samples[5], Threshold: 0.15, NoSketch: true},
		} {
			var got, want queryResponse
			postJSON(t, tsAppend, "/v1/query", req, &got)
			postJSON(t, tsRebuild, "/v1/query", req, &want)
			if !reflect.DeepEqual(got.Neighbors, want.Neighbors) {
				t.Fatalf("sketchK=%d req=%+v: append-then-query differs from rebuild\ngot  %v\nwant %v",
					sketchK, req, got.Neighbors, want.Neighbors)
			}
		}
	}
}

// TestServedMatchesMapped: a server over an mmap-opened index returns the
// same bytes as one over the in-memory corpus it was written from.
func TestServedMatchesMapped(t *testing.T) {
	_, samples, mem := testCorpus(t, 10, 150, 4)
	path := filepath.Join(t.TempDir(), "corpus.idx")
	if err := mem.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	mapped, err := index.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()

	tsMem := httptest.NewServer(newServer(mem, 1, 2, false, nil).routes())
	defer tsMem.Close()
	tsMap := httptest.NewServer(newServer(mapped, 1, 2, false, nil).routes())
	defer tsMap.Close()
	for _, req := range []queryRequest{
		{Values: samples[1], TopK: 4},
		{Values: samples[7], Threshold: 0.25},
	} {
		var a, b queryResponse
		postJSON(t, tsMem, "/v1/query", req, &a)
		postJSON(t, tsMap, "/v1/query", req, &b)
		if !reflect.DeepEqual(a.Neighbors, b.Neighbors) {
			t.Fatalf("mapped serving differs from in-memory for %+v", req)
		}
	}
}
