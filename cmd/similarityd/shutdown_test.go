package main

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// leakCheck snapshots the goroutine count and returns a function that
// fails the test if the count has not returned to (near) the baseline —
// the convention of the transport tests, with a retry loop because
// net/http worker goroutines unwind asynchronously after Shutdown.
func leakCheck(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			after := runtime.NumGoroutine()
			if after <= before {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak: %d before, %d after\n%s", before, after, buf[:n])
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// TestGracefulDrain proves the shutdown contract: once a query has been
// admitted, Shutdown closes the listener but the in-flight request runs to
// completion and its response reaches the client.
func TestGracefulDrain(t *testing.T) {
	defer leakCheck(t)()
	_, samples, c := testCorpus(t, 10, 150, 0)
	s := newServer(c, 1, 2, false, nil)
	s.queryDelay = 300 * time.Millisecond

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: s.routes()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	vals := make([]string, len(samples[0]))
	for i, v := range samples[0] {
		vals[i] = fmt.Sprint(v)
	}
	type result struct {
		status int
		err    error
	}
	inFlight := make(chan result, 1)
	go func() {
		resp, err := http.Get(base + "/v1/query?top_k=3&values=" + strings.Join(vals, ","))
		if err != nil {
			inFlight <- result{err: err}
			return
		}
		resp.Body.Close()
		inFlight <- result{status: resp.StatusCode}
	}()

	// Wait until the query is genuinely in flight before shutting down.
	deadline := time.Now().Add(2 * time.Second)
	for s.inFlight.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("query never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}

	shutdownStart := time.Now()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
	r := <-inFlight
	if r.err != nil || r.status != http.StatusOK {
		t.Fatalf("in-flight query during drain: status %d, err %v", r.status, r.err)
	}
	if waited := time.Since(shutdownStart); waited < 100*time.Millisecond {
		t.Fatalf("Shutdown returned after %v — it cannot have drained the delayed query", waited)
	}
	// The listener must be closed: a new connection is refused.
	if _, err := net.DialTimeout("tcp", ln.Addr().String(), 200*time.Millisecond); err == nil {
		t.Fatal("listener still accepting after Shutdown")
	}
}

// TestConcurrentQueriesRaceClean hammers a server with parallel queries
// and appends; run under -race this is the race-clean serving check.
func TestConcurrentQueriesRaceClean(t *testing.T) {
	defer leakCheck(t)()
	_, samples, c := testCorpus(t, 12, 180, 4)
	s := newServer(c, 2, 3, false, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: s.routes()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if w%4 == 3 && i%5 == 0 {
					body := fmt.Sprintf(`{"name":"w%dq%d","values":[1,2,%d]}`, w, i, 3+i)
					resp, err := http.Post(base+"/v1/append", "application/json", strings.NewReader(body))
					if err != nil {
						t.Errorf("append: %v", err)
						return
					}
					resp.Body.Close()
					continue
				}
				vals := make([]string, len(samples[i%len(samples)]))
				for k, v := range samples[i%len(samples)] {
					vals[k] = fmt.Sprint(v)
				}
				resp, err := http.Get(base + "/v1/query?top_k=4&values=" + strings.Join(vals, ","))
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("query status %d", resp.StatusCode)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	<-serveErr
	if got := s.corpus.Counters(); got.Queries == 0 || got.Appends == 0 {
		t.Fatalf("counters %+v after hammering", got)
	}
}

// syncBuffer lets the run() goroutine write logs while the test polls
// them.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRunLifecycle drives the real main-loop: run() serves an index file
// from disk, answers /healthz and a query, and exits cleanly (draining)
// when its context is cancelled — the in-process version of the CI
// SIGTERM smoke test, goroutine-leak-checked.
func TestRunLifecycle(t *testing.T) {
	defer leakCheck(t)()
	_, samples, c := testCorpus(t, 8, 120, 4)
	path := filepath.Join(t.TempDir(), "corpus.idx")
	if err := c.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"mmap", "load"} {
		ctx, cancel := context.WithCancel(context.Background())
		out := &syncBuffer{}
		args := []string{"-index", path, "-addr", "127.0.0.1:0", "-drain-timeout", "5s"}
		if mode == "load" {
			args = append(args, "-load")
		}
		runErr := make(chan error, 1)
		go func() { runErr <- run(ctx, args, out) }()

		addrRe := regexp.MustCompile(`on (127\.0\.0\.1:\d+)`)
		var base string
		deadline := time.Now().Add(5 * time.Second)
		for base == "" {
			if m := addrRe.FindStringSubmatch(out.String()); m != nil {
				base = "http://" + m[1]
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s: server never announced its address; output: %q", mode, out.String())
			}
			time.Sleep(5 * time.Millisecond)
		}

		resp, err := http.Get(base + "/healthz")
		if err != nil {
			t.Fatalf("%s: healthz: %v", mode, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: healthz status %d", mode, resp.StatusCode)
		}
		vals := make([]string, len(samples[2]))
		for i, v := range samples[2] {
			vals[i] = fmt.Sprint(v)
		}
		resp, err = http.Get(base + "/v1/query?top_k=3&values=" + strings.Join(vals, ","))
		if err != nil {
			t.Fatalf("%s: query: %v", mode, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: query status %d", mode, resp.StatusCode)
		}

		cancel()
		select {
		case err := <-runErr:
			if err != nil {
				t.Fatalf("%s: run returned %v", mode, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("%s: run did not exit after cancellation", mode)
		}
		if logs := out.String(); !strings.Contains(logs, "drained, exiting") {
			t.Fatalf("%s: missing drain log: %q", mode, logs)
		}
	}
}

func TestRunFlagErrors(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, []string{}, &bytes.Buffer{}); err == nil {
		t.Fatal("run without -index succeeded")
	}
	if err := run(ctx, []string{"-index", "/nonexistent/idx"}, &bytes.Buffer{}); err == nil {
		t.Fatal("run with missing index file succeeded")
	}
	if err := run(ctx, []string{"-bogus"}, &bytes.Buffer{}); err == nil {
		t.Fatal("run with unknown flag succeeded")
	}
}
