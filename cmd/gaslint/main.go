// Command gaslint is the repo-invariant static analysis suite: five
// analyzers enforcing the conventions the compiler cannot see.
//
// Standalone over package patterns:
//
//	gaslint ./...
//
// Or as the vet tool, sharing one CI step with the standard vet suite:
//
//	go vet -vettool=$(command -v gaslint) ./...
//
// Exit status is 0 on a clean tree, 2 with findings on stderr. Every
// exemption is an annotation with a mandatory reason — //gas:invariant,
// //gas:unordered, //gas:unsafe, //gas:detached — documented in
// docs/static_analysis.md.
package main

import (
	"genomeatscale/internal/analysis"
	"genomeatscale/internal/analysis/ctxflow"
	"genomeatscale/internal/analysis/errclose"
	"genomeatscale/internal/analysis/maprange"
	"genomeatscale/internal/analysis/panicfree"
	"genomeatscale/internal/analysis/unsafecast"
)

func main() {
	analysis.Main(
		unsafecast.Analyzer,
		panicfree.Analyzer,
		ctxflow.Analyzer,
		errclose.Analyzer,
		maprange.Analyzer,
	)
}
