package main

import "testing"

func TestRunSingleFigures(t *testing.T) {
	// Only the cheap, deterministic figures are exercised here; the full set
	// is covered by the root benchmark harness and internal/figures tests.
	for _, fig := range []string{"table2", "mcdram"} {
		if err := run([]string{"-fig", fig}); err != nil {
			t.Errorf("fig %s: %v", fig, err)
		}
	}
}

func TestRunMeasuredFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("measured figure generation skipped in -short mode")
	}
	if err := run([]string{"-fig", "accuracy", "-scale", "small"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-fig", "nope"}); err == nil {
		t.Error("unknown figure should be rejected")
	}
	if err := run([]string{"-scale", "huge"}); err == nil {
		t.Error("unknown scale should be rejected")
	}
}
