// Command benchfigs regenerates the tables and figures of the paper's
// evaluation (Section V) and prints them as text tables: Table II, Figures
// 2a–2f, Figure 3, the MCDRAM ablation of Section V-D, the exact-vs-MinHash
// accuracy comparison, and the two design-choice ablations from DESIGN.md.
//
//	benchfigs -fig all -scale small
//	benchfigs -fig 2b  -scale medium
package main

import (
	"fmt"
	"os"

	"genomeatscale/internal/cliutil"
	"genomeatscale/internal/figures"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchfigs:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := cliutil.NewFlagSet("benchfigs")
	fig := fs.String("fig", "all", "which figure to regenerate: table2, 2a, 2b, 2c, 2d, 2e, 2f, 3, mcdram, accuracy, ablation-bitmask, ablation-replication, ablation-compression, all")
	scaleName := fs.String("scale", "small", "measured-run scale: small or medium")
	if err := fs.Parse(args); err != nil {
		return err
	}

	scale := figures.Small
	switch *scaleName {
	case "small":
		scale = figures.Small
	case "medium":
		scale = figures.Medium
	default:
		return fmt.Errorf("unknown scale %q", *scaleName)
	}

	print := func(tables []figures.Table, err error) error {
		if err != nil {
			return err
		}
		for _, t := range tables {
			fmt.Println(t.String())
		}
		return nil
	}
	single := func(t figures.Table, err error) error {
		return print([]figures.Table{t}, err)
	}

	switch *fig {
	case "table2":
		return single(figures.Table2(), nil)
	case "2a":
		return print(figures.Fig2aKingsfordStrongScaling(scale))
	case "2b":
		return print(figures.Fig2bBIGSIStrongScaling(scale))
	case "2c":
		return print(figures.Fig2cBatchSensitivityKingsford(scale))
	case "2d":
		return print(figures.Fig2dBatchSensitivityBIGSI(scale))
	case "2e":
		return print(figures.Fig2eSyntheticStrongScaling(scale))
	case "2f":
		return print(figures.Fig2fSyntheticWeakScaling(scale))
	case "3":
		return print(figures.Fig3SparsitySweep(scale))
	case "mcdram":
		return single(figures.MCDRAMAblation(), nil)
	case "accuracy":
		return single(figures.AccuracyExactVsMinHash(scale))
	case "ablation-bitmask":
		return single(figures.AblationBitmask(scale))
	case "ablation-replication":
		return single(figures.AblationReplication(scale))
	case "ablation-compression":
		return single(figures.CompressionStats(scale))
	case "all":
		return print(figures.All(scale))
	default:
		return fmt.Errorf("unknown figure %q", *fig)
	}
}
