// Command genomeatscale computes all-pairs Jaccard similarities and
// distances between genomic sequencing samples given as FASTA files, using
// the SimilarityAtScale algorithm — the Go counterpart of the paper's
// GenomeAtScale tool.
//
// Each input FASTA file is treated as one data sample: its sequences are
// decomposed into (canonical) k-mers, rare k-mers are dropped as noise, and
// the resulting k-mer sets are compared with the distributed pipeline.
//
// Example:
//
//	genomeatscale -k 19 -min-count 1 -procs 8 -batches 4 -workers 1 \
//	    -similarity sim.tsv -distance dist.tsv -newick tree.nwk sample1.fa sample2.fa ...
//
// With -top-k or -threshold the run streams: only the requested sample
// pairs are retained (in memory bounded by the reduction, not by n²) and
// printed as a pair list instead of the full matrices.
package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	genomeatscale "genomeatscale"
	"genomeatscale/internal/cliutil"
	"genomeatscale/internal/cluster"
	"genomeatscale/internal/genome"
	"genomeatscale/internal/output"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "genomeatscale:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := cliutil.NewFlagSet("genomeatscale")
	k := fs.Int("k", 19, "k-mer length (1..31); the paper uses 19 for RNASeq and 31 for WGS data")
	canonical := fs.Bool("canonical", true, "use canonical (strand-independent) k-mers")
	minCount := fs.Int("min-count", 1, "drop k-mers occurring fewer than this many times in a sample (noise filter)")
	compute := cliutil.BindCompute(fs)
	transport := cliutil.BindTransport(fs)
	simPath := fs.String("similarity", "", "write the similarity matrix to this TSV file")
	distPath := fs.String("distance", "", "write the distance matrix to this TSV file")
	phylipPath := fs.String("phylip", "", "write the distance matrix in PHYLIP format to this file")
	newickPath := fs.String("newick", "", "write a neighbour-joining guide tree in Newick format to this file")
	pairsThreshold := fs.Float64("pairs-threshold", -1, "if ≥ 0, print sample pairs with similarity at or above this threshold (post-hoc, from the gathered matrix)")
	indexFlags := cliutil.BindIndex(fs)
	statsJSON := cliutil.BindStatsJSON(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	files := fs.Args()
	if len(files) < 2 {
		return fmt.Errorf("need at least two FASTA files, got %d", len(files))
	}

	sampleOpts := genome.SampleOptions{
		ExtractorOptions: genome.ExtractorOptions{K: *k, Canonical: *canonical},
		MinCount:         *minCount,
	}
	samples := make([]genome.Sample, 0, len(files))
	for _, path := range files {
		records, err := genome.ReadFASTAFile(path)
		if err != nil {
			return err
		}
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		s, err := genome.BuildSampleFromRecords(name, records, sampleOpts)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		samples = append(samples, s)
		fmt.Fprintf(out, "loaded %-30s %12d distinct %d-mers\n", name, s.Cardinality(), *k)
	}

	ds, err := genome.BuildDataset(samples)
	if err != nil {
		return err
	}

	if compute.Streaming() {
		if transport.TCP() {
			return fmt.Errorf("streaming mode (-top-k/-threshold) runs in-process; drop -transport tcp")
		}
		if *simPath != "" || *distPath != "" || *phylipPath != "" || *newickPath != "" {
			return fmt.Errorf("streaming mode (-top-k/-threshold) does not gather the matrices; drop -similarity/-distance/-phylip/-newick")
		}
		if *pairsThreshold >= 0 {
			return fmt.Errorf("-pairs-threshold filters the gathered matrix post hoc; in streaming mode use -threshold instead")
		}
		res, pairs, err := compute.StreamPairs(context.Background(), ds)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\nstreamed %d×%d Jaccard similarity run in %.3fs (%d tiles, peak tile %d words)\n",
			res.N, res.N, res.Stats.TotalSeconds, res.Stats.TilesEmitted, res.Stats.PeakTileWords)
		cliutil.PrintTuning(out, res.Stats.Tuning)
		cliutil.PrintSketch(out, res.Stats.Sketch)
		if err := cliutil.WriteStatsJSONFlag(out, *statsJSON, &res.Stats); err != nil {
			return err
		}
		if err := indexFlags.Write(out, ds, compute.Options()); err != nil {
			return err
		}
		fmt.Fprintf(out, "\n%d retained sample pairs:\n", len(pairs))
		return output.WritePairs(out, pairs)
	}

	opts := compute.Options()
	closeTransport, err := transport.Setup(&opts)
	if err != nil {
		return err
	}
	defer closeTransport()
	e, err := genomeatscale.NewEngineFromOptions(opts)
	if err != nil {
		return err
	}
	res, err := e.Similarity(context.Background(), ds)
	if err != nil {
		return err
	}

	if !transport.Root() {
		// Non-root TCP ranks hold no gathered matrix — rank 0 writes the
		// outputs for the whole job.
		fmt.Fprintf(out, "\nrank %d of %d: run complete in %.3fs\n",
			*transport.Rank, opts.Procs, res.Stats.TotalSeconds)
		cliutil.PrintComm(out, &res.Stats)
		return nil
	}

	fmt.Fprintf(out, "\ncomputed %d×%d Jaccard similarity matrix in %.3fs (%d batches)\n",
		res.N, res.N, res.Stats.TotalSeconds, res.Stats.Batches)
	cliutil.PrintTuning(out, res.Stats.Tuning)
	cliutil.PrintSketch(out, res.Stats.Sketch)
	cliutil.PrintComm(out, &res.Stats)
	if err := cliutil.WriteStatsJSONFlag(out, *statsJSON, &res.Stats); err != nil {
		return err
	}
	if err := indexFlags.Write(out, ds, opts); err != nil {
		return err
	}

	if *simPath != "" {
		if err := cliutil.WriteMatrixTSVFile(*simPath, res.Names, res.S); err != nil {
			return err
		}
		fmt.Fprintf(out, "similarity matrix written to %s\n", *simPath)
	}
	if *distPath != "" {
		if err := cliutil.WriteMatrixTSVFile(*distPath, res.Names, res.D); err != nil {
			return err
		}
		fmt.Fprintf(out, "distance matrix written to %s\n", *distPath)
	}
	if *phylipPath != "" {
		if err := output.WritePHYLIPFile(*phylipPath, res.Names, res.D); err != nil {
			return err
		}
		fmt.Fprintf(out, "PHYLIP distance matrix written to %s\n", *phylipPath)
	}
	if *newickPath != "" {
		tree, err := cluster.NeighborJoining(res.D, res.Names)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*newickPath, []byte(tree.Newick()+"\n"), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "guide tree written to %s\n", *newickPath)
	}
	if *pairsThreshold >= 0 {
		pairs, err := output.TopPairs(res.Names, res.S, *pairsThreshold)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\n%d sample pairs with similarity ≥ %.3f:\n", len(pairs), *pairsThreshold)
		if err := output.WritePairs(out, pairs); err != nil {
			return err
		}
	}
	if *simPath == "" && *distPath == "" {
		cliutil.PrintMatrix(out, res.Names, res.S)
	}
	return nil
}
