// Command genomeatscale computes all-pairs Jaccard similarities and
// distances between genomic sequencing samples given as FASTA files, using
// the SimilarityAtScale algorithm — the Go counterpart of the paper's
// GenomeAtScale tool.
//
// Each input FASTA file is treated as one data sample: its sequences are
// decomposed into (canonical) k-mers, rare k-mers are dropped as noise, and
// the resulting k-mer sets are compared with the distributed pipeline.
//
// Example:
//
//	genomeatscale -k 19 -min-count 1 -procs 8 -batches 4 -workers 1 \
//	    -similarity sim.tsv -distance dist.tsv -newick tree.nwk sample1.fa sample2.fa ...
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"genomeatscale/internal/cluster"
	"genomeatscale/internal/core"
	"genomeatscale/internal/genome"
	"genomeatscale/internal/output"
	"genomeatscale/internal/sparse"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "genomeatscale:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("genomeatscale", flag.ContinueOnError)
	k := fs.Int("k", 19, "k-mer length (1..31); the paper uses 19 for RNASeq and 31 for WGS data")
	canonical := fs.Bool("canonical", true, "use canonical (strand-independent) k-mers")
	minCount := fs.Int("min-count", 1, "drop k-mers occurring fewer than this many times in a sample (noise filter)")
	procs := fs.Int("procs", 1, "number of virtual BSP ranks")
	batches := fs.Int("batches", 1, "number of row batches of the indicator matrix")
	maskBits := fs.Int("mask-bits", 64, "bitmask compression width b (1..64)")
	replication := fs.Int("replication", 1, "processor-grid replication factor c")
	workers := fs.Int("workers", 0, "shared-memory worker goroutines per process for the Gram kernel, packing and finalization (0 = one per CPU, 1 = serial)")
	denseThreshold := fs.Int("dense-threshold", 0, "stored-word count at which a packed column is held as a dense slab (0 = auto ≈ ¼ of the word rows, negative = always sparse)")
	simPath := fs.String("similarity", "", "write the similarity matrix to this TSV file")
	distPath := fs.String("distance", "", "write the distance matrix to this TSV file")
	phylipPath := fs.String("phylip", "", "write the distance matrix in PHYLIP format to this file")
	newickPath := fs.String("newick", "", "write a neighbour-joining guide tree in Newick format to this file")
	pairsThreshold := fs.Float64("pairs-threshold", -1, "if ≥ 0, print sample pairs with similarity at or above this threshold")
	if err := fs.Parse(args); err != nil {
		return err
	}
	files := fs.Args()
	if len(files) < 2 {
		return fmt.Errorf("need at least two FASTA files, got %d", len(files))
	}

	sampleOpts := genome.SampleOptions{
		ExtractorOptions: genome.ExtractorOptions{K: *k, Canonical: *canonical},
		MinCount:         *minCount,
	}
	samples := make([]genome.Sample, 0, len(files))
	for _, path := range files {
		records, err := genome.ReadFASTAFile(path)
		if err != nil {
			return err
		}
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		s, err := genome.BuildSampleFromRecords(name, records, sampleOpts)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		samples = append(samples, s)
		fmt.Fprintf(out, "loaded %-30s %12d distinct %d-mers\n", name, s.Cardinality(), *k)
	}

	ds, err := genome.BuildDataset(samples)
	if err != nil {
		return err
	}
	opts := core.Options{
		BatchCount:     *batches,
		MaskBits:       *maskBits,
		Procs:          *procs,
		Replication:    *replication,
		Workers:        *workers,
		DenseThreshold: *denseThreshold,
	}
	var res *core.Result
	if *procs > 1 {
		res, err = core.Compute(ds, opts)
	} else {
		res, err = core.ComputeSequential(ds, opts)
	}
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "\ncomputed %d×%d Jaccard similarity matrix in %.3fs (%d batches)\n",
		res.N, res.N, res.Stats.TotalSeconds, res.Stats.Batches)
	if res.Stats.Comm != nil {
		fmt.Fprintf(out, "communication: %d supersteps, %.2f MiB total\n",
			res.Stats.Comm.Supersteps, float64(res.Stats.Comm.TotalBytes)/(1<<20))
	}

	if *simPath != "" {
		if err := writeMatrixTSV(*simPath, res.Names, res.S); err != nil {
			return err
		}
		fmt.Fprintf(out, "similarity matrix written to %s\n", *simPath)
	}
	if *distPath != "" {
		if err := writeMatrixTSV(*distPath, res.Names, res.D); err != nil {
			return err
		}
		fmt.Fprintf(out, "distance matrix written to %s\n", *distPath)
	}
	if *phylipPath != "" {
		if err := output.WritePHYLIPFile(*phylipPath, res.Names, res.D); err != nil {
			return err
		}
		fmt.Fprintf(out, "PHYLIP distance matrix written to %s\n", *phylipPath)
	}
	if *newickPath != "" {
		tree, err := cluster.NeighborJoining(res.D, res.Names)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*newickPath, []byte(tree.Newick()+"\n"), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "guide tree written to %s\n", *newickPath)
	}
	if *pairsThreshold >= 0 {
		pairs, err := output.TopPairs(res.Names, res.S, *pairsThreshold)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\n%d sample pairs with similarity ≥ %.3f:\n", len(pairs), *pairsThreshold)
		if err := output.WritePairs(out, pairs); err != nil {
			return err
		}
	}
	if *simPath == "" && *distPath == "" {
		printMatrix(out, res.Names, res.S)
	}
	return nil
}

func writeMatrixTSV(path string, names []string, m *sparse.Dense[float64]) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(f, "sample\t%s\n", strings.Join(names, "\t"))
	for i, name := range names {
		cells := make([]string, m.Cols)
		for j := 0; j < m.Cols; j++ {
			cells[j] = fmt.Sprintf("%.6f", m.At(i, j))
		}
		fmt.Fprintf(f, "%s\t%s\n", name, strings.Join(cells, "\t"))
	}
	return nil
}

func printMatrix(out *os.File, names []string, m *sparse.Dense[float64]) {
	fmt.Fprintf(out, "\n%-20s", "")
	for _, n := range names {
		fmt.Fprintf(out, " %10s", truncate(n, 10))
	}
	fmt.Fprintln(out)
	for i, n := range names {
		fmt.Fprintf(out, "%-20s", truncate(n, 20))
		for j := range names {
			fmt.Fprintf(out, " %10.4f", m.At(i, j))
		}
		fmt.Fprintln(out)
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}
