package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"genomeatscale/internal/cliutil"
	"genomeatscale/internal/genome"
	"genomeatscale/internal/index"
)

// writeTestFASTA writes n related FASTA files into dir and returns their paths.
func writeTestFASTA(t *testing.T, dir string, n int) []string {
	t.Helper()
	records, err := genome.GenerateFamily(genome.FamilyConfig{
		AncestorLength: 5000,
		Descendants:    n - 1,
		Model:          genome.MutationModel{SubstitutionRate: 0.02},
		Seed:           3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, rec := range records {
		path := filepath.Join(dir, rec.ID+".fasta")
		if err := genome.WriteFASTAFile(path, []genome.Record{rec}, 70); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, path)
	}
	return paths
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	paths := writeTestFASTA(t, dir, 3)
	simOut := filepath.Join(dir, "sim.tsv")
	phylipOut := filepath.Join(dir, "dist.phy")
	newickOut := filepath.Join(dir, "tree.nwk")
	stdout, err := os.CreateTemp(dir, "stdout")
	if err != nil {
		t.Fatal(err)
	}
	defer stdout.Close()

	args := append([]string{
		"-k", "13", "-procs", "2", "-batches", "2",
		"-similarity", simOut, "-phylip", phylipOut, "-newick", newickOut,
		"-pairs-threshold", "0.0",
	}, paths...)
	if err := run(args, stdout); err != nil {
		t.Fatal(err)
	}

	sim, err := os.ReadFile(simOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(sim), "ancestor") {
		t.Error("similarity TSV missing sample names")
	}
	phy, err := os.ReadFile(phylipOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(strings.TrimSpace(string(phy)), "3") {
		t.Error("PHYLIP output should start with the sample count")
	}
	nwk, err := os.ReadFile(newickOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(strings.TrimSpace(string(nwk)), ";") {
		t.Error("Newick output should end with a semicolon")
	}
}

func TestRunRequiresTwoFiles(t *testing.T) {
	dir := t.TempDir()
	paths := writeTestFASTA(t, dir, 1)
	stdout, _ := os.CreateTemp(dir, "stdout")
	defer stdout.Close()
	if err := run(paths, stdout); err == nil {
		t.Error("a single input file should be rejected")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.fasta")
	os.WriteFile(bad, []byte("not fasta at all\n"), 0o644)
	good := writeTestFASTA(t, dir, 1)
	stdout, _ := os.CreateTemp(dir, "stdout")
	defer stdout.Close()
	if err := run([]string{good[0], bad}, stdout); err == nil {
		t.Error("malformed FASTA should be rejected")
	}
	if err := run([]string{"-k", "99", good[0], good[0]}, stdout); err == nil {
		t.Error("invalid k should be rejected")
	}
}

func TestRunStreamingTopK(t *testing.T) {
	dir := t.TempDir()
	paths := writeTestFASTA(t, dir, 4)
	stdout, err := os.CreateTemp(dir, "stdout")
	if err != nil {
		t.Fatal(err)
	}
	defer stdout.Close()
	args := append([]string{"-k", "13", "-procs", "2", "-top-k", "2"}, paths...)
	if err := run(args, stdout); err != nil {
		t.Fatal(err)
	}
	content, _ := os.ReadFile(stdout.Name())
	if !strings.Contains(string(content), "2 retained sample pairs") {
		t.Errorf("expected 2 retained pairs in output:\n%s", content)
	}
	if !strings.Contains(string(content), "sample_a\tsample_b\tjaccard") {
		t.Errorf("expected pair TSV header in output:\n%s", content)
	}
}

func TestRunStreamingRejectsMatrixOutputs(t *testing.T) {
	dir := t.TempDir()
	paths := writeTestFASTA(t, dir, 2)
	stdout, _ := os.CreateTemp(dir, "stdout")
	defer stdout.Close()
	args := append([]string{"-top-k", "1", "-similarity", filepath.Join(dir, "s.tsv")}, paths...)
	if err := run(args, stdout); err == nil {
		t.Error("streaming mode combined with matrix outputs should be rejected")
	}
}

// TestRunIndexOutAndStatsJSON checks the artifacts the gathered run emits:
// -index-out writes a k-mer index that index.Open can query (self-query
// returns J=1), -stats-json writes RunStats that ReadStatsJSON parses.
func TestRunIndexOutAndStatsJSON(t *testing.T) {
	dir := t.TempDir()
	paths := writeTestFASTA(t, dir, 3)
	idxPath := filepath.Join(dir, "corpus.idx")
	statsPath := filepath.Join(dir, "stats.json")
	stdout, _ := os.CreateTemp(dir, "stdout")
	defer stdout.Close()

	args := append([]string{"-k", "13", "-batches", "2", "-index-out", idxPath, "-stats-json", statsPath}, paths...)
	if err := run(args, stdout); err != nil {
		t.Fatal(err)
	}

	sf, err := os.Open(statsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()
	stats, err := cliutil.ReadStatsJSON(sf)
	if err != nil {
		t.Fatalf("ReadStatsJSON: %v", err)
	}
	if stats.Batches != 2 {
		t.Errorf("stats.Batches = %d, want 2", stats.Batches)
	}

	corpus, err := index.Open(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	defer corpus.Close()
	if corpus.Samples() != 3 {
		t.Fatalf("index has %d samples, want 3", corpus.Samples())
	}
	// Re-extract the ancestor's k-mer set and query it: the top neighbour
	// must be the ancestor itself at similarity 1.
	records, err := genome.ReadFASTAFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	s, err := genome.BuildSampleFromRecords("q", records, genome.SampleOptions{
		ExtractorOptions: genome.ExtractorOptions{K: 13, Canonical: true},
		MinCount:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	neighbors, err := corpus.Query(context.Background(), s.Kmers, index.QueryOptions{TopK: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(neighbors) != 1 || neighbors[0].Similarity != 1 {
		t.Fatalf("self query neighbours = %+v, want one exact match", neighbors)
	}
}
