// Command benchcheck guards the repository's kernel benchmarks against
// regressions: it compares a freshly generated BENCH_kernels.json against
// the committed baseline (BENCH_baseline.json) and fails when any tracked
// metric regressed by more than the tolerance.
//
// Only dimensionless ratios are compared — dense-vs-sparse kernel speedups,
// the asm-vs-portable dispatch speedup, the arena allocation reduction, the
// autotuned-vs-best-manual ratio, the streaming peak-memory ratio, the
// prescreening tier's recall, screened fraction and speedup — never
// raw nanoseconds, so the check is meaningful across machines of different
// speeds. A new metric present only in the current artifact passes (the
// baseline just hasn't recorded it yet); a metric the baseline tracks but
// the current run lost fails.
//
// Example:
//
//	benchcheck -baseline BENCH_baseline.json -current BENCH_kernels.json
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"genomeatscale/internal/cliutil"
)

// artifact mirrors the ratio-bearing parts of the BENCH_kernels.json
// schema written by cmd/benchkernels; the raw-time fields are ignored.
type artifact struct {
	Results []struct {
		Storage               string  `json:"storage"`
		Occupancy             float64 `json:"occupancy"`
		Workers               int     `json:"workers"`
		SpeedupVsSerialSparse float64 `json:"speedup_vs_serial_sparse"`
	} `json:"results"`
	Dispatch *struct {
		Speedup float64 `json:"speedup"`
	} `json:"dispatch"`
	Arena *struct {
		Reduction float64 `json:"reduction"`
	} `json:"arena"`
	Autotune *struct {
		RatioVsBest float64 `json:"ratio_vs_best"`
	} `json:"autotune"`
	Streaming *struct {
		PeakMemoryRatio float64 `json:"peak_memory_ratio"`
	} `json:"streaming"`
	Prescreen *struct {
		Recall           float64 `json:"recall"`
		ScreenedFraction float64 `json:"screened_fraction"`
		Speedup          float64 `json:"speedup"`
	} `json:"prescreen"`
	Query *struct {
		SketchGateSpeedup  float64 `json:"sketch_gate_speedup"`
		SketchSkipFraction float64 `json:"sketch_skip_fraction"`
	} `json:"query"`
}

// metric is one tracked dimensionless ratio. LowerBetter flips the
// regression direction (only the autotune ratio wants to be small).
type metric struct {
	Value       float64
	LowerBetter bool
}

// metrics flattens an artifact into named ratios.
func metrics(a artifact) map[string]metric {
	out := map[string]metric{}
	for _, r := range a.Results {
		// Only the serial points are gated: multi-worker speedups depend on
		// how loaded the runner happens to be and routinely swing past any
		// reasonable tolerance, so they are recorded in the artifact but not
		// tracked as regressions.
		if r.SpeedupVsSerialSparse <= 0 || r.Workers != 1 {
			continue
		}
		key := fmt.Sprintf("kernel-speedup[%s,occ=%g,workers=%d]", r.Storage, r.Occupancy, r.Workers)
		out[key] = metric{Value: r.SpeedupVsSerialSparse}
	}
	if a.Dispatch != nil && a.Dispatch.Speedup > 0 {
		out["dispatch-speedup"] = metric{Value: a.Dispatch.Speedup}
	}
	if a.Arena != nil && a.Arena.Reduction > 0 {
		out["arena-alloc-reduction"] = metric{Value: a.Arena.Reduction}
	}
	if a.Autotune != nil && a.Autotune.RatioVsBest > 0 {
		out["autotune-ratio-vs-best"] = metric{Value: a.Autotune.RatioVsBest, LowerBetter: true}
	}
	if a.Streaming != nil && a.Streaming.PeakMemoryRatio > 0 {
		out["streaming-peak-memory-ratio"] = metric{Value: a.Streaming.PeakMemoryRatio}
	}
	if a.Prescreen != nil && a.Prescreen.Speedup > 0 {
		// Recall and screened fraction are ratios of pair counts, not of
		// timings, so they are stable across machines; the speedup is the
		// serial exact-vs-prescreened wall-clock ratio.
		out["prescreen-recall"] = metric{Value: a.Prescreen.Recall}
		out["prescreen-screened-fraction"] = metric{Value: a.Prescreen.ScreenedFraction}
		out["prescreen-speedup"] = metric{Value: a.Prescreen.Speedup}
	}
	if a.Query != nil && a.Query.SketchGateSpeedup > 0 {
		// The skip fraction is a ratio of sample counts (machine-stable);
		// the gate speedup is the serial exact-vs-gated latency ratio. The
		// raw query latencies and open times stay untracked.
		out["query-sketch-gate-speedup"] = metric{Value: a.Query.SketchGateSpeedup}
		out["query-sketch-skip-fraction"] = metric{Value: a.Query.SketchSkipFraction}
	}
	return out
}

func readArtifact(path string) (artifact, error) {
	var a artifact
	data, err := os.ReadFile(path)
	if err != nil {
		return a, err
	}
	if err := json.Unmarshal(data, &a); err != nil {
		return a, fmt.Errorf("%s: %w", path, err)
	}
	return a, nil
}

// check compares the current metrics against the baseline and returns the
// regressions found.
func check(baseline, current map[string]metric, tolerance float64) []string {
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)
	var bad []string
	for _, name := range names {
		base := baseline[name]
		cur, ok := current[name]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: tracked by the baseline but missing from the current artifact", name))
			continue
		}
		if base.LowerBetter {
			if limit := base.Value * (1 + tolerance); cur.Value > limit {
				bad = append(bad, fmt.Sprintf("%s: %.3f regressed past %.3f (baseline %.3f +%.0f%%)",
					name, cur.Value, limit, base.Value, tolerance*100))
			}
		} else {
			if limit := base.Value * (1 - tolerance); cur.Value < limit {
				bad = append(bad, fmt.Sprintf("%s: %.3f regressed below %.3f (baseline %.3f -%.0f%%)",
					name, cur.Value, limit, base.Value, tolerance*100))
			}
		}
	}
	return bad
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := cliutil.NewFlagSet("benchcheck")
	basePath := fs.String("baseline", "BENCH_baseline.json", "committed baseline artifact")
	curPath := fs.String("current", "BENCH_kernels.json", "freshly generated artifact to check")
	tolerance := fs.Float64("tolerance", 0.15, "allowed relative regression per metric")
	if err := fs.Parse(args); err != nil {
		return err
	}
	base, err := readArtifact(*basePath)
	if err != nil {
		return err
	}
	cur, err := readArtifact(*curPath)
	if err != nil {
		return err
	}
	baseM, curM := metrics(base), metrics(cur)
	if len(baseM) == 0 {
		return fmt.Errorf("%s tracks no metrics", *basePath)
	}
	regressions := check(baseM, curM, *tolerance)
	for _, r := range regressions {
		fmt.Fprintln(out, "REGRESSION:", r)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d of %d tracked metrics regressed more than %.0f%%",
			len(regressions), len(baseM), *tolerance*100)
	}
	fmt.Fprintf(out, "benchcheck: %d tracked metrics within %.0f%% of the baseline\n", len(baseM), *tolerance*100)
	return nil
}
