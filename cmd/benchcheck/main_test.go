package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const baselineJSON = `{
  "results": [
    {"storage": "sparse", "occupancy": 0.5, "workers": 1, "speedup_vs_serial_sparse": 1.0},
    {"storage": "dense", "occupancy": 0.5, "workers": 1, "speedup_vs_serial_sparse": 3.0}
  ],
  "dispatch": {"speedup": 4.0},
  "arena": {"reduction": 50.0},
  "autotune": {"ratio_vs_best": 1.05},
  "streaming": {"peak_memory_ratio": 10.0}
}`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBenchcheckPassesWithinTolerance(t *testing.T) {
	base := writeTemp(t, "base.json", baselineJSON)
	// 10% slower dense kernel, slightly better everything else: within 15%.
	cur := writeTemp(t, "cur.json", strings.NewReplacer(
		`"speedup_vs_serial_sparse": 3.0`, `"speedup_vs_serial_sparse": 2.7`,
		`"ratio_vs_best": 1.05`, `"ratio_vs_best": 1.0`,
	).Replace(baselineJSON))
	var buf bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur}, &buf); err != nil {
		t.Fatalf("within-tolerance comparison failed: %v\n%s", err, buf.String())
	}
}

func TestBenchcheckFailsOnRegression(t *testing.T) {
	base := writeTemp(t, "base.json", baselineJSON)
	cur := writeTemp(t, "cur.json", strings.Replace(baselineJSON,
		`"speedup_vs_serial_sparse": 3.0`, `"speedup_vs_serial_sparse": 2.0`, 1))
	var buf bytes.Buffer
	err := run([]string{"-baseline", base, "-current", cur}, &buf)
	if err == nil {
		t.Fatal("33% kernel-speedup regression passed")
	}
	if !strings.Contains(buf.String(), "kernel-speedup[dense,occ=0.5,workers=1]") {
		t.Errorf("regression report does not name the metric:\n%s", buf.String())
	}
}

func TestBenchcheckLowerBetterDirection(t *testing.T) {
	base := writeTemp(t, "base.json", baselineJSON)
	// The autotune ratio regresses UP: 1.05 → 1.5 means the tuner drifted
	// away from the best manual configuration.
	cur := writeTemp(t, "cur.json", strings.Replace(baselineJSON,
		`"ratio_vs_best": 1.05`, `"ratio_vs_best": 1.5`, 1))
	var buf bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur}, &buf); err == nil {
		t.Fatal("autotune ratio regression passed")
	}
	// ... while a DROP of the same magnitude is an improvement, not a
	// regression.
	cur2 := writeTemp(t, "cur2.json", strings.Replace(baselineJSON,
		`"ratio_vs_best": 1.05`, `"ratio_vs_best": 0.7`, 1))
	if err := run([]string{"-baseline", base, "-current", cur2}, &buf); err != nil {
		t.Fatalf("autotune ratio improvement flagged: %v", err)
	}
}

func TestBenchcheckMissingMetricFails(t *testing.T) {
	base := writeTemp(t, "base.json", baselineJSON)
	cur := writeTemp(t, "cur.json", strings.Replace(baselineJSON,
		`"dispatch": {"speedup": 4.0},`, "", 1))
	var buf bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur}, &buf); err == nil {
		t.Fatal("missing tracked metric passed")
	}
}

func TestBenchcheckExtraMetricPasses(t *testing.T) {
	// Baseline without the arena section, current with it: new metrics are
	// not regressions.
	base := writeTemp(t, "base.json", strings.Replace(baselineJSON,
		`"arena": {"reduction": 50.0},`, "", 1))
	cur := writeTemp(t, "cur.json", baselineJSON)
	var buf bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur}, &buf); err != nil {
		t.Fatalf("new metric in current artifact flagged: %v", err)
	}
}
