package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRunWritesArtifact runs a tiny sweep end to end and validates the
// JSON schema and the invariants the artifact promises: every (occupancy,
// storage, workers) point present, serial sparse points as the speedup
// anchor (speedup 1.0), and dense column counts that follow the policy.
func TestRunWritesArtifact(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_kernels.json")
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-rows", "1024", "-cols", "8", "-mintime", "10ms", "-out", out}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var art artifact
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if art.Rows != 1024 || art.Cols != 8 || art.CPUs < 1 {
		t.Fatalf("bad dimensions: %+v", art)
	}
	// quick mode: 3 occupancies × 3 policies × 2 worker counts.
	if len(art.Results) != 18 {
		t.Fatalf("got %d results, want 18", len(art.Results))
	}
	for _, r := range art.Results {
		if r.NsPerOp <= 0 {
			t.Errorf("%+v: non-positive ns/op", r)
		}
		if r.Storage == "sparse" && r.DenseCols != 0 {
			t.Errorf("sparse policy stored %d dense columns", r.DenseCols)
		}
		if r.Storage == "dense" && r.DenseCols == 0 {
			t.Errorf("dense policy stored no dense columns")
		}
		if r.Storage == "sparse" && r.Workers == 1 && r.SpeedupVsSerialSparse != 1 {
			t.Errorf("serial sparse anchor has speedup %v, want 1", r.SpeedupVsSerialSparse)
		}
		if r.SpeedupVsSerialSparse <= 0 {
			t.Errorf("%+v: non-positive speedup", r)
		}
	}
}
