// Command benchkernels measures the hybrid popcount Gram kernels at the
// kernel level — a column word-occupancy sweep × storage policy (sparse
// merge, auto hybrid, forced dense) × worker count — and writes the
// results as a JSON artifact. `make bench` runs it and CI uploads the
// artifact, seeding the repository's benchmark trajectory with the numbers
// the paper's Section V reasons about (time per Gram product and the
// dense-kernel speedup over the sparse merge).
//
// Example:
//
//	benchkernels -out BENCH_kernels.json
//	benchkernels -quick -out BENCH_kernels.json   # reduced sweep for CI
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	genomeatscale "genomeatscale"

	"genomeatscale/internal/bitmat"
	"genomeatscale/internal/bitutil"
	"genomeatscale/internal/cliutil"
	"genomeatscale/internal/core"
	"genomeatscale/internal/index"
	"genomeatscale/internal/sparse"
	"genomeatscale/internal/synth"
)

// kernelResult is one measured point of the sweep.
type kernelResult struct {
	// Storage is the column-storage policy: "sparse" (merge kernel
	// everywhere), "auto" (hybrid layout at the default threshold) or
	// "dense" (every non-empty column dense, contiguous kernel everywhere).
	Storage string `json:"storage"`
	// Occupancy is the fraction of word rows stored per column.
	Occupancy float64 `json:"occupancy"`
	// Workers is the shared-memory worker count of the measured kernel.
	Workers int `json:"workers"`
	// DenseCols is how many of the matrix's columns the policy stored dense.
	DenseCols int `json:"dense_cols"`
	// NsPerOp is the measured nanoseconds per full Gram accumulation.
	NsPerOp float64 `json:"ns_per_op"`
	// SpeedupVsSerialSparse is ns(sparse, workers=1) / ns(this point) at the
	// same occupancy — >1 means faster than the serial merge baseline.
	SpeedupVsSerialSparse float64 `json:"speedup_vs_serial_sparse"`
}

// streamingResult compares the peak resident output footprint of a
// streaming TopK run against the legacy full gather on the same dataset —
// the memory headline of the Engine.Stream API: the gathered output is
// 3n² words (B, S, D) while the streamed output peaks at one tile.
type streamingResult struct {
	// Samples is the dataset size n of the comparison run.
	Samples int `json:"samples"`
	// Procs is the virtual rank count of the runs.
	Procs int `json:"procs"`
	// TopK is the streamed reduction size.
	TopK int `json:"top_k"`
	// GatherOutputWords is the resident output of the legacy gather at rank
	// 0: the B, S and D matrices, in 64-bit words.
	GatherOutputWords int64 `json:"gather_output_words"`
	// StreamPeakTileWords is RunStats.PeakTileWords of the streaming run —
	// the largest single tile the sink ever held.
	StreamPeakTileWords int64 `json:"stream_peak_tile_words"`
	// PeakMemoryRatio is GatherOutputWords / StreamPeakTileWords (>1 means
	// streaming reduced the peak resident output memory).
	PeakMemoryRatio float64 `json:"peak_memory_ratio"`
	// TilesEmitted is the tile count of the streaming run.
	TilesEmitted int `json:"tiles_emitted"`
	// GatherSeconds and StreamSeconds are the wall-clock times of the runs.
	GatherSeconds float64 `json:"gather_seconds"`
	StreamSeconds float64 `json:"stream_seconds"`
}

// dispatchResult compares the runtime-dispatched popcount kernel (AVX-512
// VPOPCNTQ where the CPU has it) against the portable 8-way fallback on
// the same forced-dense high-occupancy Gram product — the asm-vs-portable
// delta of the kernel rung.
type dispatchResult struct {
	// Kernel is the dispatched kernel's name ("avx512-vpopcntq" or
	// "portable-8way" when the host has no supported extension).
	Kernel string `json:"kernel"`
	// Occupancy of the measured forced-dense slabs.
	Occupancy float64 `json:"occupancy"`
	// PortableNsPerOp and DispatchedNsPerOp are the per-Gram times of the
	// two kernels on identical inputs.
	PortableNsPerOp   float64 `json:"portable_ns_per_op"`
	DispatchedNsPerOp float64 `json:"dispatched_ns_per_op"`
	// Speedup is PortableNsPerOp / DispatchedNsPerOp (1.0 when the dispatch
	// resolves to the portable kernel itself).
	Speedup float64 `json:"speedup"`
}

// arenaResult compares the steady-state heap allocations of one
// pack→Gram→release batch cycle with and without the engine's slab arena.
type arenaResult struct {
	// Entries is the packed-word count rebuilt per cycle.
	Entries int `json:"entries"`
	// AllocsPlain and AllocsArena are mean mallocs per cycle.
	AllocsPlain float64 `json:"allocs_plain"`
	AllocsArena float64 `json:"allocs_arena"`
	// Reduction is AllocsPlain / AllocsArena (>1 means the arena removed
	// steady-state allocations).
	Reduction float64 `json:"reduction"`
}

// autotunePoint is one manually configured pipeline run of the
// autotune comparison.
type autotunePoint struct {
	Label   string  `json:"label"`
	Seconds float64 `json:"seconds"`
}

// autotuneResult compares a zero-flag autotuned engine run against a grid
// of hand-tuned configurations on the same dataset — the acceptance
// question of the cost-model tuner: how close does "no flags at all" land
// to the best manual configuration?
type autotuneResult struct {
	Samples    int             `json:"samples"`
	Attributes uint64          `json:"attributes"`
	Manual     []autotunePoint `json:"manual"`
	// BestManualSeconds is the fastest hand-tuned run.
	BestManualSeconds float64 `json:"best_manual_seconds"`
	// AutotunedSeconds is the zero-flag autotuned run.
	AutotunedSeconds float64 `json:"autotuned_seconds"`
	// RatioVsBest is AutotunedSeconds / BestManualSeconds (≤1.10 means the
	// tuner landed within 10% of the best manual configuration).
	RatioVsBest float64 `json:"ratio_vs_best"`
	// Plan summarises what the tuner chose.
	Plan string `json:"plan"`
}

// prescreenResult compares the thresholded near-duplicate query with and
// without the MinHash prescreening tier on a clustered corpus (a few
// clusters of near-duplicates above the threshold, everything else far
// below it) — the recall-vs-speedup acceptance question of the two-tier
// design: how much exact work does the sketch gate skip, and does it lose
// any of the pairs a post-hoc filter of the exact answer finds?
type prescreenResult struct {
	// Samples is the corpus size n; Threshold is the query's τ.
	Samples   int     `json:"samples"`
	Threshold float64 `json:"threshold"`
	// SketchSize is the auto-derived bottom-k sketch size of the run.
	SketchSize int `json:"sketch_size"`
	// PairsScreened / PairsSurvived are the gate's counters; the screened
	// fraction is 1 − survived/screened (higher = more exact work skipped).
	PairsScreened    int64   `json:"pairs_screened"`
	PairsSurvived    int64   `json:"pairs_survived"`
	ScreenedFraction float64 `json:"screened_fraction"`
	// Recall is |prescreened ∩ exact| / |exact| over the pairs at or above
	// the threshold — 1.0 means the gate lost nothing.
	Recall float64 `json:"recall"`
	// ExactSeconds and PrescreenSeconds are best-of-runs wall times of the
	// serial thresholded query; Speedup is their ratio (>1 means the
	// sketch tier paid for itself).
	ExactSeconds     float64 `json:"exact_seconds"`
	PrescreenSeconds float64 `json:"prescreen_seconds"`
	Speedup          float64 `json:"speedup"`
}

// queryResult measures the persistent-index query path (internal/index,
// served by cmd/similarityd): single-sample top-k query latency against a
// resident corpus, the open-without-load advantage of the mmap reader over
// the copying loader, and the exact-vs-sketch-gated thresholded query
// ratio. Raw latencies are recorded for the trajectory; only the
// dimensionless sketch-gate speedup is regression-gated.
type queryResult struct {
	// Samples is the corpus size; ValuesPerSample its per-sample set size.
	Samples         int `json:"samples"`
	ValuesPerSample int `json:"values_per_sample"`
	// TopK is the query's k; QueryNsPerOp the serial per-query latency and
	// QueriesPerSecond its reciprocal throughput.
	TopK             int     `json:"top_k"`
	QueryNsPerOp     float64 `json:"query_ns_per_op"`
	QueriesPerSecond float64 `json:"queries_per_second"`
	// OpenMmapSeconds / OpenLoadSeconds are best-of-runs times to open the
	// persisted index memory-mapped (metadata only) versus fully loaded;
	// OpenSpeedup is their ratio (>1 means mmap-open is cheaper).
	OpenMmapSeconds float64 `json:"open_mmap_seconds"`
	OpenLoadSeconds float64 `json:"open_load_seconds"`
	OpenSpeedup     float64 `json:"open_speedup"`
	// ExactNsPerOp / GatedNsPerOp are thresholded-query latencies without
	// and with the MinHash gate; SketchGateSpeedup is their ratio and
	// SketchSkipFraction the share of corpus samples the gate skipped.
	Threshold          float64 `json:"threshold"`
	ExactNsPerOp       float64 `json:"exact_ns_per_op"`
	GatedNsPerOp       float64 `json:"gated_ns_per_op"`
	SketchGateSpeedup  float64 `json:"sketch_gate_speedup"`
	SketchSkipFraction float64 `json:"sketch_skip_fraction"`
}

// artifact is the BENCH_kernels.json schema.
type artifact struct {
	Rows      int              `json:"rows"`
	Cols      int              `json:"cols"`
	CPUs      int              `json:"cpus"`
	Results   []kernelResult   `json:"results"`
	Dispatch  *dispatchResult  `json:"dispatch,omitempty"`
	Arena     *arenaResult     `json:"arena,omitempty"`
	Autotune  *autotuneResult  `json:"autotune,omitempty"`
	Streaming *streamingResult `json:"streaming,omitempty"`
	Prescreen *prescreenResult `json:"prescreen,omitempty"`
	Query     *queryResult     `json:"query,omitempty"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchkernels:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := cliutil.NewFlagSet("benchkernels")
	outPath := fs.String("out", "BENCH_kernels.json", "write the JSON artifact to this path")
	rows := fs.Int("rows", 16384, "active rows of the packed benchmark matrix")
	cols := fs.Int("cols", 128, "columns (samples) of the packed benchmark matrix")
	quick := fs.Bool("quick", false, "reduced sweep for CI smoke runs")
	minTime := fs.Duration("mintime", time.Second, "minimum measured wall time per benchmark point")
	if err := fs.Parse(args); err != nil {
		return err
	}

	occupancies := []float64{0.02, 0.1, 0.25, 0.5, 0.9}
	workerDim := []int{1, 4}
	if *quick {
		occupancies = []float64{0.1, 0.5, 0.9}
		if *rows > 4096 {
			*rows = 4096
		}
		if *cols > 64 {
			*cols = 64
		}
	}
	policies := []struct {
		name      string
		threshold int
	}{
		{"sparse", bitmat.DenseNever},
		{"auto", bitmat.DenseAuto},
		{"dense", 1},
	}

	art := artifact{Rows: *rows, Cols: *cols, CPUs: runtime.GOMAXPROCS(0)}
	for _, occ := range occupancies {
		var serialSparseNs float64
		for _, pol := range policies {
			packed := buildPacked(7, *rows, *cols, occ, pol.threshold)
			acc := sparse.MustDense[int64](packed.Cols, packed.Cols)
			for _, workers := range workerDim {
				w := workers
				ns := measure(*minTime, func() { packed.GramAccumulateWorkers(acc, w) })
				if pol.name == "sparse" && workers == 1 {
					serialSparseNs = ns
				}
				speedup := 0.0
				if ns > 0 && serialSparseNs > 0 {
					speedup = serialSparseNs / ns
				}
				art.Results = append(art.Results, kernelResult{
					Storage:               pol.name,
					Occupancy:             occ,
					Workers:               workers,
					DenseCols:             packed.DenseCols(),
					NsPerOp:               ns,
					SpeedupVsSerialSparse: speedup,
				})
				fmt.Fprintf(out, "occ=%.2f storage=%-6s workers=%d dense-cols=%3d  %12.0f ns/op  %5.2fx vs serial sparse\n",
					occ, pol.name, workers, packed.DenseCols(), ns, speedup)
			}
		}
	}

	art.Dispatch = measureDispatch(out, *minTime, *rows, *cols)
	arena, err := measureArena(out, *rows, *cols)
	if err != nil {
		return err
	}
	art.Arena = arena

	tuned, err := measureAutotune(out, *quick)
	if err != nil {
		return err
	}
	art.Autotune = tuned

	stream, err := measureStreamingVsGather(out, *quick)
	if err != nil {
		return err
	}
	art.Streaming = stream

	pre, err := measurePrescreen(out, *quick)
	if err != nil {
		return err
	}
	art.Prescreen = pre

	qr, err := measureQuery(out, *minTime, *quick)
	if err != nil {
		return err
	}
	art.Query = qr

	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "kernel benchmark artifact written to %s (%d points)\n", *outPath, len(art.Results))
	return nil
}

// measureDispatch times the forced-dense ≥90%-occupancy Gram product under
// the portable 8-way kernel and again under the runtime-dispatched best
// kernel on the same matrix, recording the asm-vs-portable delta. The
// dispatch is restored to the best kernel afterwards.
func measureDispatch(out io.Writer, minTime time.Duration, rows, cols int) *dispatchResult {
	const occ = 0.9
	packed := buildPacked(13, rows, cols, occ, 1)
	acc := sparse.MustDense[int64](packed.Cols, packed.Cols)

	bitutil.ForcePortable()
	portableNs := measure(minTime, func() { packed.GramAccumulateWorkers(acc, 1) })
	kernel := bitutil.EnableBestKernel()
	dispatchedNs := measure(minTime, func() { packed.GramAccumulateWorkers(acc, 1) })

	res := &dispatchResult{
		Kernel:            kernel,
		Occupancy:         occ,
		PortableNsPerOp:   portableNs,
		DispatchedNsPerOp: dispatchedNs,
	}
	if dispatchedNs > 0 {
		res.Speedup = portableNs / dispatchedNs
	}
	fmt.Fprintf(out, "kernel dispatch (occ=%.2f, dense): portable %.0f ns/op, %s %.0f ns/op, %.2fx\n",
		occ, portableNs, kernel, dispatchedNs, res.Speedup)
	return res
}

// measureArena counts heap allocations of one pack→Gram→release batch
// cycle — the steady state of the engine's batch loop — with and without
// the slab arena. Cycles are warmed first so the arena's free lists are
// populated, then mallocs are read around a fixed cycle count.
func measureArena(out io.Writer, rows, cols int) (*arenaResult, error) {
	packed := buildPacked(17, rows, cols, 0.25, bitmat.DenseAuto)
	entries := packed.Entries()
	wordRows := packed.WordRows
	acc := sparse.MustDense[int64](cols, cols)
	ctx := context.Background()

	// workers=1 keeps the cycle on the serial kernel: goroutine spawning
	// would otherwise dominate the allocation count and hide the arena's
	// effect on the buffer churn. The Gram error (only a cancelled ctx can
	// produce one here) is captured rather than panicking so the bench exits
	// with a diagnostic.
	var cycleErr error
	cycle := func(arena *bitmat.Arena) {
		p := bitmat.FromEntriesThresholdArena(entries, wordRows, cols, 64, rows, bitmat.DenseAuto, arena)
		if err := p.GramAccumulateCtxArena(ctx, acc, 1, arena); err != nil && cycleErr == nil {
			cycleErr = err
		}
		p.Release()
	}
	const iters = 20
	allocsPer := func(arena *bitmat.Arena) float64 {
		for i := 0; i < 3; i++ {
			cycle(arena)
		}
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		for i := 0; i < iters; i++ {
			cycle(arena)
		}
		runtime.ReadMemStats(&after)
		return float64(after.Mallocs-before.Mallocs) / iters
	}

	res := &arenaResult{
		Entries:     len(entries),
		AllocsPlain: allocsPer(nil),
		AllocsArena: allocsPer(bitmat.NewArena()),
	}
	if cycleErr != nil {
		return nil, cycleErr
	}
	if res.AllocsArena > 0 {
		res.Reduction = res.AllocsPlain / res.AllocsArena
	} else {
		// The warm arena cycle allocates nothing; report the plain count as
		// the (lower-bound) reduction factor instead of dividing by zero.
		res.Reduction = res.AllocsPlain
	}
	fmt.Fprintf(out, "slab arena (%d entries/cycle): %.1f allocs/cycle plain, %.1f with arena, %.0fx fewer\n",
		res.Entries, res.AllocsPlain, res.AllocsArena, res.Reduction)
	return res, nil
}

// measureAutotune runs the full sequential pipeline on one synthetic
// dataset under a grid of hand-tuned configurations and once under the
// zero-flag autotuned engine, recording how close the tuner lands to the
// best manual point.
func measureAutotune(out io.Writer, quick bool) (*autotuneResult, error) {
	// Best-of-runs on both sides keeps scheduler noise out of the ratio —
	// the quick dataset runs in tens of milliseconds, so even CI affords it.
	n, m := 160, uint64(60_000)
	const runs = 3
	if quick {
		n = 96
	}
	ds, err := syntheticDataset(23, n, m, 0.02)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()

	bestOf := func(e *genomeatscale.Engine) (float64, *genomeatscale.Result, error) {
		best := 0.0
		var res *genomeatscale.Result
		for i := 0; i < runs; i++ {
			r, err := e.Similarity(ctx, ds)
			if err != nil {
				return 0, nil, err
			}
			if res == nil || r.Stats.TotalSeconds < best {
				best, res = r.Stats.TotalSeconds, r
			}
		}
		return best, res, nil
	}

	result := &autotuneResult{Samples: n, Attributes: m}
	for _, batches := range []int{1, 4} {
		for _, workers := range []int{1, 0} {
			for _, dt := range []int{-1, 0} {
				e, err := genomeatscale.NewEngine(
					genomeatscale.WithBatches(batches),
					genomeatscale.WithWorkers(workers),
					genomeatscale.WithDenseThreshold(dt),
				)
				if err != nil {
					return nil, err
				}
				secs, _, err := bestOf(e)
				if err != nil {
					return nil, err
				}
				label := fmt.Sprintf("batches=%d workers=%d dt=%d", batches, workers, dt)
				result.Manual = append(result.Manual, autotunePoint{Label: label, Seconds: secs})
				if result.BestManualSeconds == 0 || secs < result.BestManualSeconds {
					result.BestManualSeconds = secs
				}
			}
		}
	}

	auto, err := genomeatscale.NewEngine(genomeatscale.WithAutotune(true))
	if err != nil {
		return nil, err
	}
	secs, res, err := bestOf(auto)
	if err != nil {
		return nil, err
	}
	result.AutotunedSeconds = secs
	if t := res.Stats.Tuning; t != nil {
		result.Plan = fmt.Sprintf("procs=%d replication=%d batches=%d tile-rows=%d dense-threshold=%d",
			t.Plan.Procs, t.Plan.Replication, t.Plan.Batches, t.Plan.TileRows, t.Plan.DenseThreshold)
	}
	if result.BestManualSeconds > 0 {
		result.RatioVsBest = result.AutotunedSeconds / result.BestManualSeconds
	}
	fmt.Fprintf(out, "autotune (n=%d, m=%d): best manual %.4fs, autotuned %.4fs (%.2fx of best; plan %s)\n",
		n, m, result.BestManualSeconds, result.AutotunedSeconds, result.RatioVsBest, result.Plan)
	return result, nil
}

// syntheticDataset builds the uniform random dataset the engine-level
// comparisons run on.
func syntheticDataset(seed uint64, n int, m uint64, density float64) (genomeatscale.Dataset, error) {
	rng := synth.NewRNG(seed)
	names := make([]string, n)
	samples := make([][]uint64, n)
	for i := range samples {
		names[i] = fmt.Sprintf("s%03d", i)
		var vals []uint64
		for a := uint64(0); a < m; a++ {
			if rng.Float64() < density {
				vals = append(vals, a)
			}
		}
		samples[i] = vals
	}
	return genomeatscale.NewDataset(names, samples, m)
}

// measureStreamingVsGather runs the full pipeline on the artifact's
// largest synthetic dataset twice — legacy full gather versus an
// Engine.Stream TopK run — and records the peak resident output memory of
// each: 3n² words at the gathering root versus one tile plus the O(k)
// reduction state when streaming.
func measureStreamingVsGather(out io.Writer, quick bool) (*streamingResult, error) {
	n, m := 256, uint64(40_000)
	if quick {
		n = 96
	}
	const topK = 10
	rng := synth.NewRNG(11)
	names := make([]string, n)
	samples := make([][]uint64, n)
	for i := range samples {
		names[i] = fmt.Sprintf("s%03d", i)
		var vals []uint64
		for a := uint64(0); a < m; a++ {
			if rng.Float64() < 0.02 {
				vals = append(vals, a)
			}
		}
		samples[i] = vals
	}
	ds, err := genomeatscale.NewDataset(names, samples, m)
	if err != nil {
		return nil, err
	}
	engine, err := genomeatscale.NewEngine(
		genomeatscale.WithProcs(4),
		genomeatscale.WithBatches(2),
	)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	gathered, err := engine.Similarity(ctx, ds)
	if err != nil {
		return nil, err
	}
	sink := genomeatscale.TopK(topK)
	streamed, err := engine.Stream(ctx, ds, sink)
	if err != nil {
		return nil, err
	}
	if len(sink.Pairs()) != topK {
		return nil, fmt.Errorf("streaming comparison: sink kept %d pairs, want %d", len(sink.Pairs()), topK)
	}
	res := &streamingResult{
		Samples:             n,
		Procs:               engine.Options().Procs,
		TopK:                topK,
		GatherOutputWords:   int64(len(gathered.B.Data) + len(gathered.S.Data) + len(gathered.D.Data)),
		StreamPeakTileWords: streamed.Stats.PeakTileWords,
		TilesEmitted:        streamed.Stats.TilesEmitted,
		GatherSeconds:       gathered.Stats.TotalSeconds,
		StreamSeconds:       streamed.Stats.TotalSeconds,
	}
	if res.StreamPeakTileWords > 0 {
		res.PeakMemoryRatio = float64(res.GatherOutputWords) / float64(res.StreamPeakTileWords)
	}
	fmt.Fprintf(out, "streaming-vs-gather (n=%d, top-%d): gather %d words, stream peak tile %d words, ratio %.1fx\n",
		n, topK, res.GatherOutputWords, res.StreamPeakTileWords, res.PeakMemoryRatio)
	return res, nil
}

// measurePrescreen runs the serial thresholded near-duplicate query (a
// Threshold sink at τ = 0.8) on a near-duplicate corpus twice — exact and
// with the MinHash prescreening tier in front — and records the recall of
// the prescreened answer against the exact one, the fraction of pairs the
// gate screened out, and the wall-clock speedup. The corpus is the shape
// thresholded queries are run on: a few small duplicate clusters buried
// in a majority of isolated samples with no near-duplicate at all, so the
// prescreening tier can skip both the pairwise Gram tiles and the packing
// of the isolated columns. Both runs are serial (workers = 1) so the
// ratio reflects the kernel work skipped, not how loaded the runner
// happens to be; best-of-runs keeps scheduler noise out.
func measurePrescreen(out io.Writer, quick bool) (*prescreenResult, error) {
	clusters, perCluster, isolated, baseSize := 20, 4, 176, 3000
	runs := 3
	if quick {
		clusters, perCluster, isolated, baseSize = 10, 4, 104, 2000
	}
	const tau = 0.8
	const universe = uint64(1) << 40
	rng := synth.NewRNG(29)
	extra := baseSize / 11 // within-cluster Jaccard ≈ 0.85
	n := clusters*perCluster + isolated
	names := make([]string, 0, n)
	samples := make([][]uint64, 0, n)
	for c := 0; c < clusters; c++ {
		base := make([]uint64, baseSize)
		for i := range base {
			base[i] = rng.Uint64n(universe)
		}
		for s := 0; s < perCluster; s++ {
			sample := append([]uint64(nil), base...)
			for k := 0; k < extra; k++ {
				sample = append(sample, rng.Uint64n(universe))
			}
			names = append(names, fmt.Sprintf("c%02d-s%d", c, s))
			samples = append(samples, sample)
		}
	}
	for s := 0; s < isolated; s++ {
		sample := make([]uint64, baseSize+extra)
		for i := range sample {
			sample[i] = rng.Uint64n(universe)
		}
		names = append(names, fmt.Sprintf("bg-%03d", s))
		samples = append(samples, sample)
	}
	ds, err := genomeatscale.NewDataset(names, samples, universe)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()

	bestOf := func(e *genomeatscale.Engine) (float64, []genomeatscale.Pair, *genomeatscale.Result, error) {
		best := 0.0
		var pairs []genomeatscale.Pair
		var res *genomeatscale.Result
		for i := 0; i < runs; i++ {
			sink := genomeatscale.Threshold(tau)
			r, err := e.Stream(ctx, ds, sink)
			if err != nil {
				return 0, nil, nil, err
			}
			if res == nil || r.Stats.TotalSeconds < best {
				best, pairs, res = r.Stats.TotalSeconds, sink.Pairs(), r
			}
		}
		return best, pairs, res, nil
	}

	exactEngine, err := genomeatscale.NewEngine(genomeatscale.WithWorkers(1))
	if err != nil {
		return nil, err
	}
	exactSecs, exactPairs, _, err := bestOf(exactEngine)
	if err != nil {
		return nil, err
	}
	preEngine, err := genomeatscale.NewEngine(
		genomeatscale.WithWorkers(1),
		genomeatscale.WithSketchPrescreen(0, tau, 0),
	)
	if err != nil {
		return nil, err
	}
	preSecs, prePairs, preRes, err := bestOf(preEngine)
	if err != nil {
		return nil, err
	}
	if len(exactPairs) == 0 {
		return nil, fmt.Errorf("prescreen comparison: no pairs above τ=%g in the exact run", tau)
	}

	exactSet := make(map[[2]int]float64, len(exactPairs))
	for _, p := range exactPairs {
		exactSet[[2]int{p.I, p.J}] = p.Similarity
	}
	hits := 0
	for _, p := range prePairs {
		if s, ok := exactSet[[2]int{p.I, p.J}]; ok {
			if s != p.Similarity {
				return nil, fmt.Errorf("prescreen comparison: pair (%d,%d) S=%v differs from exact %v — survivors must be byte-identical",
					p.I, p.J, p.Similarity, s)
			}
			hits++
		}
	}
	st := preRes.Stats.Sketch
	res := &prescreenResult{
		Samples:          n,
		Threshold:        tau,
		SketchSize:       st.Size,
		PairsScreened:    st.PairsScreened,
		PairsSurvived:    st.PairsSurvived,
		ScreenedFraction: 1 - float64(st.PairsSurvived)/float64(st.PairsScreened),
		Recall:           float64(hits) / float64(len(exactPairs)),
		ExactSeconds:     exactSecs,
		PrescreenSeconds: preSecs,
	}
	if preSecs > 0 {
		res.Speedup = exactSecs / preSecs
	}
	fmt.Fprintf(out, "prescreen (n=%d, τ=%g, k=%d): recall %.4f, %.1f%% of pairs screened out, exact %.4fs vs prescreened %.4fs (%.2fx)\n",
		n, tau, res.SketchSize, res.Recall, 100*res.ScreenedFraction, exactSecs, preSecs, res.Speedup)
	return res, nil
}

// measureQuery benchmarks the persistent-index query service path on a
// clustered corpus (the sketch gate's target shape: most samples far below
// the threshold). It persists the index once, times mmap-open versus full
// load, the serial top-k query, and the thresholded query with and
// without the MinHash gate. Serial (Workers=1) throughout so the ratios
// reflect kernel work, not runner load.
func measureQuery(out io.Writer, minTime time.Duration, quick bool) (*queryResult, error) {
	clusters, perCluster, isolated, baseSize := 12, 4, 464, 3000
	if quick {
		clusters, perCluster, isolated, baseSize = 8, 4, 224, 2000
	}
	const tau = 0.7
	const sketchK = 64
	const topK = 10
	const universe = uint64(1) << 40
	rng := synth.NewRNG(31)
	extra := baseSize / 11
	n := clusters*perCluster + isolated
	names := make([]string, 0, n)
	samples := make([][]uint64, 0, n)
	var queries [][]uint64
	for c := 0; c < clusters; c++ {
		base := make([]uint64, baseSize)
		for i := range base {
			base[i] = rng.Uint64n(universe)
		}
		for s := 0; s < perCluster; s++ {
			sample := append([]uint64(nil), base...)
			for k := 0; k < extra; k++ {
				sample = append(sample, rng.Uint64n(universe))
			}
			names = append(names, fmt.Sprintf("c%02d-s%d", c, s))
			samples = append(samples, sample)
		}
		// One fresh near-duplicate per cluster as a query workload.
		q := append([]uint64(nil), base...)
		for k := 0; k < extra; k++ {
			q = append(q, rng.Uint64n(universe))
		}
		queries = append(queries, q)
	}
	for s := 0; s < isolated; s++ {
		sample := make([]uint64, baseSize+extra)
		for i := range sample {
			sample[i] = rng.Uint64n(universe)
		}
		names = append(names, fmt.Sprintf("bg-%03d", s))
		samples = append(samples, sample)
	}
	ds, err := core.NewInMemoryDataset(names, samples, universe)
	if err != nil {
		return nil, err
	}
	built, err := index.Build(ds, index.Options{SketchK: sketchK})
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "benchquery")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := dir + "/corpus.idx"
	if err := built.WriteFile(path); err != nil {
		return nil, err
	}

	// Open times: best of several runs on both sides. mmap-open validates
	// metadata only; load copies every array to the heap.
	openBest := func(open func(string) (*index.Corpus, error)) (float64, error) {
		best := 0.0
		for i := 0; i < 5; i++ {
			start := time.Now()
			c, err := open(path)
			if err != nil {
				return 0, err
			}
			elapsed := time.Since(start).Seconds()
			c.Close()
			if i == 0 || elapsed < best {
				best = elapsed
			}
		}
		return best, nil
	}
	mmapSecs, err := openBest(index.Open)
	if err != nil {
		return nil, err
	}
	loadSecs, err := openBest(index.Load)
	if err != nil {
		return nil, err
	}

	corpus, err := index.Open(path)
	if err != nil {
		return nil, err
	}
	defer corpus.Close()
	ctx := context.Background()
	qi := 0
	nextQuery := func() []uint64 {
		q := queries[qi%len(queries)]
		qi++
		return q
	}
	// Query errors are captured (first one wins) rather than panicking so
	// the bench reports a diagnostic instead of a stack trace.
	var queryErr error
	runQuery := func(opts index.QueryOptions) func() {
		return func() {
			if _, err := corpus.Query(ctx, nextQuery(), opts); err != nil && queryErr == nil {
				queryErr = err
			}
		}
	}
	serial := index.QueryOptions{TopK: topK, Workers: 1}
	queryNs := measure(minTime, runQuery(serial))
	exactNs := measure(minTime, runQuery(index.QueryOptions{Threshold: tau, Workers: 1, NoSketch: true}))
	before := corpus.Counters()
	gatedNs := measure(minTime, runQuery(index.QueryOptions{Threshold: tau, Workers: 1}))
	after := corpus.Counters()
	if queryErr != nil {
		return nil, queryErr
	}

	res := &queryResult{
		Samples:         n,
		ValuesPerSample: baseSize + extra,
		TopK:            topK,
		QueryNsPerOp:    queryNs,
		OpenMmapSeconds: mmapSecs,
		OpenLoadSeconds: loadSecs,
		Threshold:       tau,
		ExactNsPerOp:    exactNs,
		GatedNsPerOp:    gatedNs,
	}
	if queryNs > 0 {
		res.QueriesPerSecond = 1e9 / queryNs
	}
	if mmapSecs > 0 {
		res.OpenSpeedup = loadSecs / mmapSecs
	}
	if gatedNs > 0 {
		res.SketchGateSpeedup = exactNs / gatedNs
	}
	if scanned := after.QuerySamples - before.QuerySamples; scanned > 0 {
		res.SketchSkipFraction = float64(after.SketchSkips-before.SketchSkips) / float64(scanned)
	}
	fmt.Fprintf(out, "index query (n=%d, k=%d): %.0f queries/s serial, open mmap %.2gs vs load %.2gs (%.1fx), τ=%g gate %.2fx (%.0f%% skipped)\n",
		n, topK, res.QueriesPerSecond, mmapSecs, loadSecs, res.OpenSpeedup, tau, res.SketchGateSpeedup, 100*res.SketchSkipFraction)
	return res, nil
}

// measure times fn like a benchmark: after a warm-up call, the iteration
// count ramps until at least minTime of wall clock is covered, and the
// mean nanoseconds per call of the final batch is returned.
func measure(minTime time.Duration, fn func()) float64 {
	fn()
	n := 1
	for {
		start := time.Now()
		for i := 0; i < n; i++ {
			fn()
		}
		elapsed := time.Since(start)
		if elapsed >= minTime {
			return float64(elapsed.Nanoseconds()) / float64(n)
		}
		if elapsed <= 0 {
			n *= 100
			continue
		}
		grown := int(float64(n)*float64(minTime)/float64(elapsed)*1.2) + 1
		n = grown
	}
}

// buildPacked generates a packed matrix whose columns each store roughly
// `occupancy` of the word rows (the quantity the dense threshold acts on),
// stored under the given dense-threshold spec. It shares the
// synth.WordOccupancyRows fixture with the in-repo benchmarks in
// bench_test.go so the artifact's numbers stay comparable with them.
func buildPacked(seed uint64, rows, cols int, occupancy float64, threshold int) *bitmat.Packed {
	rowsPerCol := synth.WordOccupancyRows(synth.NewRNG(seed), rows, cols, occupancy)
	return bitmat.PackColumnsThreshold(rowsPerCol, rows, 64, threshold)
}
