// Command benchkernels measures the hybrid popcount Gram kernels at the
// kernel level — a column word-occupancy sweep × storage policy (sparse
// merge, auto hybrid, forced dense) × worker count — and writes the
// results as a JSON artifact. `make bench` runs it and CI uploads the
// artifact, seeding the repository's benchmark trajectory with the numbers
// the paper's Section V reasons about (time per Gram product and the
// dense-kernel speedup over the sparse merge).
//
// Example:
//
//	benchkernels -out BENCH_kernels.json
//	benchkernels -quick -out BENCH_kernels.json   # reduced sweep for CI
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"genomeatscale/internal/bitmat"
	"genomeatscale/internal/sparse"
	"genomeatscale/internal/synth"
)

// kernelResult is one measured point of the sweep.
type kernelResult struct {
	// Storage is the column-storage policy: "sparse" (merge kernel
	// everywhere), "auto" (hybrid layout at the default threshold) or
	// "dense" (every non-empty column dense, contiguous kernel everywhere).
	Storage string `json:"storage"`
	// Occupancy is the fraction of word rows stored per column.
	Occupancy float64 `json:"occupancy"`
	// Workers is the shared-memory worker count of the measured kernel.
	Workers int `json:"workers"`
	// DenseCols is how many of the matrix's columns the policy stored dense.
	DenseCols int `json:"dense_cols"`
	// NsPerOp is the measured nanoseconds per full Gram accumulation.
	NsPerOp float64 `json:"ns_per_op"`
	// SpeedupVsSerialSparse is ns(sparse, workers=1) / ns(this point) at the
	// same occupancy — >1 means faster than the serial merge baseline.
	SpeedupVsSerialSparse float64 `json:"speedup_vs_serial_sparse"`
}

// artifact is the BENCH_kernels.json schema.
type artifact struct {
	Rows    int            `json:"rows"`
	Cols    int            `json:"cols"`
	CPUs    int            `json:"cpus"`
	Results []kernelResult `json:"results"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchkernels:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchkernels", flag.ContinueOnError)
	outPath := fs.String("out", "BENCH_kernels.json", "write the JSON artifact to this path")
	rows := fs.Int("rows", 16384, "active rows of the packed benchmark matrix")
	cols := fs.Int("cols", 128, "columns (samples) of the packed benchmark matrix")
	quick := fs.Bool("quick", false, "reduced sweep for CI smoke runs")
	minTime := fs.Duration("mintime", time.Second, "minimum measured wall time per benchmark point")
	if err := fs.Parse(args); err != nil {
		return err
	}

	occupancies := []float64{0.02, 0.1, 0.25, 0.5, 0.9}
	workerDim := []int{1, 4}
	if *quick {
		occupancies = []float64{0.1, 0.5, 0.9}
		if *rows > 4096 {
			*rows = 4096
		}
		if *cols > 64 {
			*cols = 64
		}
	}
	policies := []struct {
		name      string
		threshold int
	}{
		{"sparse", bitmat.DenseNever},
		{"auto", bitmat.DenseAuto},
		{"dense", 1},
	}

	art := artifact{Rows: *rows, Cols: *cols, CPUs: runtime.GOMAXPROCS(0)}
	for _, occ := range occupancies {
		var serialSparseNs float64
		for _, pol := range policies {
			packed := buildPacked(7, *rows, *cols, occ, pol.threshold)
			acc := sparse.NewDense[int64](packed.Cols, packed.Cols)
			for _, workers := range workerDim {
				w := workers
				ns := measure(*minTime, func() { packed.GramAccumulateWorkers(acc, w) })
				if pol.name == "sparse" && workers == 1 {
					serialSparseNs = ns
				}
				speedup := 0.0
				if ns > 0 && serialSparseNs > 0 {
					speedup = serialSparseNs / ns
				}
				art.Results = append(art.Results, kernelResult{
					Storage:               pol.name,
					Occupancy:             occ,
					Workers:               workers,
					DenseCols:             packed.DenseCols(),
					NsPerOp:               ns,
					SpeedupVsSerialSparse: speedup,
				})
				fmt.Fprintf(out, "occ=%.2f storage=%-6s workers=%d dense-cols=%3d  %12.0f ns/op  %5.2fx vs serial sparse\n",
					occ, pol.name, workers, packed.DenseCols(), ns, speedup)
			}
		}
	}

	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "kernel benchmark artifact written to %s (%d points)\n", *outPath, len(art.Results))
	return nil
}

// measure times fn like a benchmark: after a warm-up call, the iteration
// count ramps until at least minTime of wall clock is covered, and the
// mean nanoseconds per call of the final batch is returned.
func measure(minTime time.Duration, fn func()) float64 {
	fn()
	n := 1
	for {
		start := time.Now()
		for i := 0; i < n; i++ {
			fn()
		}
		elapsed := time.Since(start)
		if elapsed >= minTime {
			return float64(elapsed.Nanoseconds()) / float64(n)
		}
		if elapsed <= 0 {
			n *= 100
			continue
		}
		grown := int(float64(n)*float64(minTime)/float64(elapsed)*1.2) + 1
		n = grown
	}
}

// buildPacked generates a packed matrix whose columns each store roughly
// `occupancy` of the word rows (the quantity the dense threshold acts on),
// stored under the given dense-threshold spec. It shares the
// synth.WordOccupancyRows fixture with the in-repo benchmarks in
// bench_test.go so the artifact's numbers stay comparable with them.
func buildPacked(seed uint64, rows, cols int, occupancy float64, threshold int) *bitmat.Packed {
	rowsPerCol := synth.WordOccupancyRows(synth.NewRNG(seed), rows, cols, occupancy)
	return bitmat.PackColumnsThreshold(rowsPerCol, rows, 64, threshold)
}
