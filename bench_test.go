package genomeatscale

// This file is the benchmark harness required to regenerate every table and
// figure of the paper's evaluation (Section V). Each benchmark wraps the
// corresponding generator in internal/figures, which combines measured runs
// of the distributed pipeline on scaled dataset proxies with cost-model
// projections at the paper's full scale. Custom metrics expose the
// quantities the paper reports (per-batch seconds, projected totals,
// communication volume). `cmd/benchfigs` prints the same tables as text.
//
//	go test -bench=. -benchmem ./...

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"genomeatscale/internal/bitmat"
	"genomeatscale/internal/core"
	"genomeatscale/internal/dataset"
	"genomeatscale/internal/figures"
	"genomeatscale/internal/genome"
	"genomeatscale/internal/minhash"
	"genomeatscale/internal/semiring"
	"genomeatscale/internal/sparse"
	"genomeatscale/internal/synth"
)

// reportCell parses the leading float of a formatted cell ("3.2 s") and
// reports it as a benchmark metric.
func reportCell(b *testing.B, tab figures.Table, row, col int, unit string) {
	b.Helper()
	if row >= len(tab.Rows) || col >= len(tab.Rows[row]) {
		return
	}
	fields := strings.Fields(tab.Rows[row][col])
	if len(fields) == 0 {
		return
	}
	if v, err := strconv.ParseFloat(fields[0], 64); err == nil {
		b.ReportMetric(v, unit)
	}
}

// --- Table II -----------------------------------------------------------------

func BenchmarkTable2ToolComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := figures.Table2()
		if len(tab.Rows) != 4 {
			b.Fatal("unexpected Table II contents")
		}
	}
}

// --- Figure 2 -----------------------------------------------------------------

func benchFigure(b *testing.B, gen func(figures.Scale) ([]figures.Table, error)) []figures.Table {
	b.Helper()
	var tables []figures.Table
	var err error
	for i := 0; i < b.N; i++ {
		tables, err = gen(figures.Small)
		if err != nil {
			b.Fatal(err)
		}
	}
	return tables
}

func BenchmarkFig2aKingsfordStrongScaling(b *testing.B) {
	tables := benchFigure(b, figures.Fig2aKingsfordStrongScaling)
	// Projected total hours at the paper's sweet-spot region (32 nodes, row 5)
	// and measured per-batch seconds at the largest scaled rank count.
	reportCell(b, tables[0], 5, 5, "proj-total-h@32nodes")
	meas := tables[1]
	reportCell(b, meas, len(meas.Rows)-1, 3, "meas-batch-s")
}

func BenchmarkFig2bBIGSIStrongScaling(b *testing.B) {
	tables := benchFigure(b, figures.Fig2bBIGSIStrongScaling)
	reportCell(b, tables[0], len(tables[0].Rows)-1, 5, "proj-total-d@1024nodes")
	meas := tables[1]
	reportCell(b, meas, len(meas.Rows)-1, 5, "meas-comm-mib")
}

func BenchmarkFig2cBatchSensitivityKingsford(b *testing.B) {
	tables := benchFigure(b, figures.Fig2cBatchSensitivityKingsford)
	reportCell(b, tables[0], 0, 5, "proj-total-h@16384batches")
	reportCell(b, tables[0], len(tables[0].Rows)-1, 5, "proj-total-h@1024batches")
}

func BenchmarkFig2dBatchSensitivityBIGSI(b *testing.B) {
	tables := benchFigure(b, figures.Fig2dBatchSensitivityBIGSI)
	reportCell(b, tables[0], 0, 5, "proj-total-d@262144batches")
	reportCell(b, tables[0], len(tables[0].Rows)-1, 5, "proj-total-d@16384batches")
}

func BenchmarkFig2eSyntheticStrongScaling(b *testing.B) {
	tables := benchFigure(b, figures.Fig2eSyntheticStrongScaling)
	reportCell(b, tables[0], 0, 5, "proj-total-h@1node")
	reportCell(b, tables[0], len(tables[0].Rows)-1, 5, "proj-total-h@64nodes")
}

func BenchmarkFig2fSyntheticWeakScaling(b *testing.B) {
	tables := benchFigure(b, figures.Fig2fSyntheticWeakScaling)
	// Work-per-rank growth factor at the largest scale (×64 in the paper).
	proj := tables[0]
	last := proj.Rows[len(proj.Rows)-1][3]
	if idx := strings.Index(last, "×"); idx >= 0 {
		factor := strings.TrimSuffix(last[idx+len("×"):], ")")
		if v, err := strconv.ParseFloat(factor, 64); err == nil {
			b.ReportMetric(v, "work-per-rank-growth")
		}
	}
}

func BenchmarkFig3SparsitySweep(b *testing.B) {
	tables := benchFigure(b, func(s figures.Scale) ([]figures.Table, error) { return figures.Fig3SparsitySweep(s) })
	proj := tables[0]
	reportCell(b, proj, 0, 2, "proj-total-s@p=1e-4")
	reportCell(b, proj, len(proj.Rows)-1, 2, "proj-total-s@p=1e-2")
}

// --- Section V-D and accuracy ----------------------------------------------------

func BenchmarkMCDRAMAblation(b *testing.B) {
	var tab figures.Table
	for i := 0; i < b.N; i++ {
		tab = figures.MCDRAMAblation()
	}
	if len(tab.Rows) > 0 {
		slow := strings.TrimSuffix(tab.Rows[0][3], "%")
		if v, err := strconv.ParseFloat(slow, 64); err == nil {
			b.ReportMetric(v, "slowdown-%")
		}
	}
}

func BenchmarkAccuracyExactVsMinHash(b *testing.B) {
	var tab figures.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = figures.AccuracyExactVsMinHash(figures.Small)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Worst small-sketch error on the most similar pair (last row).
	reportCell(b, tab, len(tab.Rows)-1, 5, "minhash-error-s100")
}

// --- Ablations -----------------------------------------------------------------

func BenchmarkAblationBitmask(b *testing.B) {
	var tab figures.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = figures.AblationBitmask(figures.Small)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportCell(b, tab, 0, 2, "comm-mib-b1")
	reportCell(b, tab, len(tab.Rows)-1, 2, "comm-mib-b64")
}

func BenchmarkAblationReplication(b *testing.B) {
	var tab figures.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = figures.AblationReplication(figures.Small)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportCell(b, tab, 0, 5, "comm-mib-c1")
	reportCell(b, tab, len(tab.Rows)-1, 5, "comm-mib-c8")
}

func BenchmarkAblationCompressionStats(b *testing.B) {
	var tab figures.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = figures.CompressionStats(figures.Small)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportCell(b, tab, 0, 6, "packed-words-per-nnz")
}

// --- Kernel microbenchmarks -------------------------------------------------------
// These cover the individual building blocks whose costs the analysis in
// Section III-C reasons about.

func benchmarkProxy(b *testing.B) *core.InMemoryDataset {
	b.Helper()
	ds, err := dataset.Kingsford().Generate(dataset.ScaledConfig{
		Samples: 128, Attributes: 100_000, DensityScale: 20, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

func BenchmarkSequentialPipeline(b *testing.B) {
	ds := benchmarkProxy(b)
	// workers=1 is the historical serial pipeline; workers=0 uses one
	// shared-memory worker per CPU for the Gram kernel, per-column packing
	// and the Eq. 2 finalization.
	for _, workers := range []int{1, 0} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := core.DefaultOptions()
			opts.BatchCount = 4
			opts.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, err := core.ComputeSequential(ds, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDistributedPipeline8Ranks(b *testing.B) {
	ds := benchmarkProxy(b)
	opts := core.DefaultOptions()
	opts.BatchCount = 4
	opts.Procs = 8
	opts.Replication = 2
	opts.SkipGather = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Compute(ds, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamingVsGatherPeakOutput runs the distributed pipeline once
// per iteration in streaming TopK mode and reports the peak resident
// output footprint against the 3n² words a full gather holds at rank 0 —
// the memory claim of the Engine.Stream API, also recorded in the
// BENCH_kernels.json artifact by cmd/benchkernels.
func BenchmarkStreamingVsGatherPeakOutput(b *testing.B) {
	ds := benchmarkProxy(b)
	engine, err := NewEngine(WithProcs(8), WithReplication(2), WithBatches(4))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	gatherWords := 3 * int64(ds.NumSamples()) * int64(ds.NumSamples())
	var peak int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := engine.Stream(ctx, ds, TopK(10))
		if err != nil {
			b.Fatal(err)
		}
		peak = res.Stats.PeakTileWords
	}
	b.ReportMetric(float64(peak), "peak-tile-words")
	b.ReportMetric(float64(gatherWords)/float64(peak), "gather-vs-stream-mem-ratio")
}

func BenchmarkDistributedPipeline12Ranks3Layers(b *testing.B) {
	// The replicated 2×2×3 grid: exercises the inter-layer reduction and the
	// panel broadcasts of internal/dist, the hot path of the paper's c > 1
	// ablation (Section V-C).
	ds := benchmarkProxy(b)
	opts := core.DefaultOptions()
	opts.BatchCount = 4
	opts.Procs = 12
	opts.Replication = 3
	opts.SkipGather = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Compute(ds, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactJaccardBaseline(b *testing.B) {
	ds := benchmarkProxy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.ExactJaccard(ds)
	}
}

// kernelProxy builds a random packed batch matrix for the Gram kernel
// microbenchmarks.
func kernelProxy(seed uint64, rows, cols, perCol int) *bitmat.Packed {
	rng := synth.NewRNG(seed)
	rowsPerCol := make([][]int, cols)
	for j := range rowsPerCol {
		seen := map[int]bool{}
		for len(rowsPerCol[j]) < perCol {
			r := rng.Intn(rows)
			if !seen[r] {
				seen[r] = true
				rowsPerCol[j] = append(rowsPerCol[j], r)
			}
		}
		sort.Ints(rowsPerCol[j])
	}
	return bitmat.PackColumns(rowsPerCol, rows, 64)
}

func BenchmarkPackedGramKernel(b *testing.B) {
	packed := kernelProxy(2, 4000, 160, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		packed.Gram()
	}
}

// BenchmarkPackedGramKernelWorkers measures the tiled multi-core kernel at
// fixed worker counts. Compare the workers=1 and workers=4 sub-benchmark
// times on a ≥ 4-core runner; BenchmarkGramKernelSpeedupWorkers4 reports
// the ratio directly.
func BenchmarkPackedGramKernelWorkers(b *testing.B) {
	packed := kernelProxy(2, 8000, 256, 400)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			acc := sparse.MustDense[int64](packed.Cols, packed.Cols)
			for i := 0; i < b.N; i++ {
				packed.GramAccumulateWorkers(acc, workers)
			}
		})
	}
}

// BenchmarkGramKernelSpeedupWorkers4 times the serial and the 4-worker
// kernel back to back on the same input and records the speedup and the
// CPU count as benchmark metrics, so the multi-core gain (or a
// single-core runner explaining its absence) is visible in every bench
// log.
func BenchmarkGramKernelSpeedupWorkers4(b *testing.B) {
	packed := kernelProxy(2, 8000, 256, 400)
	serialAcc := sparse.MustDense[int64](packed.Cols, packed.Cols)
	parAcc := sparse.MustDense[int64](packed.Cols, packed.Cols)
	// Warm both kernels (and the packed matrix's cache residency) before
	// timing, so the single-sample CI smoke run (-benchtime 1x) does not
	// charge the cold-start cost to whichever variant runs first.
	packed.GramAccumulateWorkers(serialAcc, 1)
	packed.GramAccumulateWorkers(parAcc, 4)
	serialAcc, parAcc = sparse.MustDense[int64](packed.Cols, packed.Cols), sparse.MustDense[int64](packed.Cols, packed.Cols)
	var serial, parallel time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		packed.GramAccumulateWorkers(serialAcc, 1)
		serial += time.Since(t0)
		t1 := time.Now()
		packed.GramAccumulateWorkers(parAcc, 4)
		parallel += time.Since(t1)
	}
	b.StopTimer()
	if parallel > 0 {
		b.ReportMetric(serial.Seconds()/parallel.Seconds(), "speedup-w4")
	}
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "cpus")
	for k := range serialAcc.Data {
		if serialAcc.Data[k] != parAcc.Data[k] {
			b.Fatal("parallel kernel diverged from serial kernel")
		}
	}
}

// kernelProxyOccupancy builds a packed matrix whose columns each store
// roughly `occupancy` of the word rows (the quantity the dense threshold
// and the kernel dispatch act on — at b=64 even 2% row occupancy fills
// ~70% of the word rows, so the sweep controls word occupancy directly),
// with the given dense-threshold spec. cmd/benchkernels sweeps the same
// synth.WordOccupancyRows fixture, so its JSON artifact and these
// benchmarks stay comparable.
func kernelProxyOccupancy(seed uint64, rows, cols int, occupancy float64, threshold int) *bitmat.Packed {
	rowsPerCol := synth.WordOccupancyRows(synth.NewRNG(seed), rows, cols, occupancy)
	return bitmat.PackColumnsThreshold(rowsPerCol, rows, 64, threshold)
}

// BenchmarkHybridGramDensitySweep measures one full batch cycle of the
// engine's steady state — rebuild the packed matrix from entries,
// accumulate its Gram product, release — across a column-occupancy sweep
// under the three storage policies (sparse merge everywhere, the auto
// hybrid default, forced dense) and with the slab arena off and on. Each
// sub-benchmark reports allocs/op: with the arena the warm cycle must
// allocate ~zero, the ≥10× headline of the arena rung. Compare the
// arena=off/on pairs for the allocation delta and the storage policies at
// a fixed occupancy for the kernel dispatch payoff; `cmd/benchkernels`
// writes the same sweep (and the allocation comparison) as a JSON
// artifact.
func BenchmarkHybridGramDensitySweep(b *testing.B) {
	modes := []struct {
		name      string
		threshold int
	}{
		{"sparse", bitmat.DenseNever},
		{"auto", bitmat.DenseAuto},
		{"dense", 1},
	}
	const rows, cols = 16384, 128
	ctx := context.Background()
	for _, occ := range []float64{0.02, 0.1, 0.25, 0.5, 0.9} {
		for _, mode := range modes {
			entries := kernelProxyOccupancy(11, rows, cols, occ, mode.threshold).Entries()
			for _, withArena := range []bool{false, true} {
				name := fmt.Sprintf("occ=%g/%s/arena=%v", occ, mode.name, withArena)
				b.Run(name, func(b *testing.B) {
					var arena *bitmat.Arena
					if withArena {
						arena = bitmat.NewArena()
					}
					acc := sparse.MustDense[int64](cols, cols)
					wordRows := (rows + 63) / 64
					cycle := func() {
						packed := bitmat.FromEntriesThresholdArena(entries, wordRows, cols, 64, rows, mode.threshold, arena)
						if err := packed.GramAccumulateCtxArena(ctx, acc, 1, arena); err != nil {
							b.Fatal(err)
						}
						packed.Release()
					}
					for i := 0; i < 3; i++ {
						cycle() // warm the arena's free lists before counting
					}
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						cycle()
					}
				})
			}
		}
	}
}

// BenchmarkDenseKernelSpeedup90 times the sparse merge kernel and the
// dense contiguous kernel back to back on the same ≥90%-occupancy columns
// and reports the ratio — the acceptance metric of the hybrid layout (the
// dense×dense kernel must be ≥2× the merge kernel on dense data).
func BenchmarkDenseKernelSpeedup90(b *testing.B) {
	sparsePacked := kernelProxyOccupancy(12, 16384, 128, 0.9, bitmat.DenseNever)
	densePacked := kernelProxyOccupancy(12, 16384, 128, 0.9, 1)
	sparseAcc := sparse.MustDense[int64](sparsePacked.Cols, sparsePacked.Cols)
	denseAcc := sparse.MustDense[int64](densePacked.Cols, densePacked.Cols)
	// Warm both kernels so the single-sample CI smoke run does not charge
	// cold-start costs to whichever variant runs first.
	sparsePacked.GramAccumulateWorkers(sparseAcc, 1)
	densePacked.GramAccumulateWorkers(denseAcc, 1)
	for k := range sparseAcc.Data {
		if sparseAcc.Data[k] != denseAcc.Data[k] {
			b.Fatal("dense kernel diverged from sparse kernel")
		}
	}
	var sparseT, denseT time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		sparsePacked.GramAccumulateWorkers(sparseAcc, 1)
		sparseT += time.Since(t0)
		t1 := time.Now()
		densePacked.GramAccumulateWorkers(denseAcc, 1)
		denseT += time.Since(t1)
	}
	b.StopTimer()
	if denseT > 0 {
		b.ReportMetric(sparseT.Seconds()/denseT.Seconds(), "speedup-dense")
	}
}

func BenchmarkUncompressedGramReference(b *testing.B) {
	rng := synth.NewRNG(2)
	coo := sparse.MustCOO[int64](4000, 160)
	for j := 0; j < 160; j++ {
		for k := 0; k < 200; k++ {
			coo.Append(rng.Intn(4000), j, 1)
		}
	}
	csc := sparse.CSCFromCOO(coo, semiring.PlusInt64())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sparse.GramT(csc, semiring.PlusTimesInt64())
	}
}

func BenchmarkKmerExtraction(b *testing.B) {
	rng := synth.NewRNG(7)
	seq := genome.RandomSequence(rng, 100_000)
	opts := genome.ExtractorOptions{K: 31, Canonical: true}
	b.SetBytes(int64(len(seq)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := genome.ExtractKmers(seq, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinHashSketch(b *testing.B) {
	values := make([]uint64, 100_000)
	rng := synth.NewRNG(8)
	for i := range values {
		values[i] = rng.Uint64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		minhash.MustNew(values, 1000)
	}
}
