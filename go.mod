module genomeatscale

go 1.24
