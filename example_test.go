package genomeatscale_test

import (
	"context"
	"fmt"
	"log"

	genomeatscale "genomeatscale"
)

func exampleDataset() genomeatscale.Dataset {
	ds, err := genomeatscale.NewDataset(
		[]string{"alpha", "beta", "gamma", "delta"},
		[][]uint64{
			{1, 2, 3, 4, 5},
			{1, 2, 3, 4, 6},
			{4, 5, 6, 7},
			{80, 81, 82},
		},
		100,
	)
	if err != nil {
		log.Fatal(err)
	}
	return ds
}

// ExampleNewEngine builds a reusable engine with functional options and
// runs the classic gathered-output pipeline.
func ExampleNewEngine() {
	engine, err := genomeatscale.NewEngine(
		genomeatscale.WithProcs(4),
		genomeatscale.WithBatches(2),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := engine.Similarity(context.Background(), exampleDataset())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("J(alpha, beta) = %.3f\n", res.Similarity(0, 1))
	fmt.Printf("J(alpha, delta) = %.3f\n", res.Similarity(0, 3))
	// Output:
	// J(alpha, beta) = 0.667
	// J(alpha, delta) = 0.000
}

// ExampleEngine_Stream streams the result into a TopK sink: only the two
// most similar sample pairs are retained, never the n×n matrices.
func ExampleEngine_Stream() {
	engine, err := genomeatscale.NewEngine(genomeatscale.WithProcs(4))
	if err != nil {
		log.Fatal(err)
	}
	top := genomeatscale.TopK(2)
	res, err := engine.Stream(context.Background(), exampleDataset(), top)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range top.Pairs() {
		fmt.Printf("%s ~ %s: %.3f\n", res.Names[p.I], res.Names[p.J], p.Similarity)
	}
	fmt.Printf("matrices gathered: %v, tiles emitted: %d\n", res.S != nil, res.Stats.TilesEmitted)
	// Output:
	// alpha ~ beta: 0.667
	// alpha ~ gamma: 0.286
	// matrices gathered: false, tiles emitted: 4
}

// ExampleCollectFull shows that streaming into the collecting sink
// reproduces the gathered matrices of Engine.Similarity exactly.
func ExampleCollectFull() {
	engine, err := genomeatscale.NewEngine(genomeatscale.WithProcs(2), genomeatscale.WithBatches(3))
	if err != nil {
		log.Fatal(err)
	}
	ds := exampleDataset()
	gathered, err := engine.Similarity(context.Background(), ds)
	if err != nil {
		log.Fatal(err)
	}
	collect := genomeatscale.CollectFull()
	if _, err := engine.Stream(context.Background(), ds, collect); err != nil {
		log.Fatal(err)
	}
	identical := true
	for i := 0; i < gathered.N; i++ {
		for j := 0; j < gathered.N; j++ {
			if collect.S().At(i, j) != gathered.Similarity(i, j) {
				identical = false
			}
		}
	}
	fmt.Println("byte-identical:", identical)
	// Output:
	// byte-identical: true
}

// ExampleWithAutotune lets the cost model choose the run configuration
// from the dataset and the host, pinning only the batch count. The results
// are identical to any manual configuration; what the tuner decided is
// recorded in the run statistics.
func ExampleWithAutotune() {
	engine, err := genomeatscale.NewEngine(
		genomeatscale.WithAutotune(true),
		genomeatscale.WithBatches(2), // pinned: the tuner plans around it
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := engine.Similarity(context.Background(), exampleDataset())
	if err != nil {
		log.Fatal(err)
	}
	t := res.Stats.Tuning
	fmt.Printf("J(alpha, beta) = %.3f\n", res.Similarity(0, 1))
	fmt.Printf("tuned: procs=%d batches=%d, pinned: %v\n", t.Plan.Procs, t.Plan.Batches, t.Pinned)
	// Output:
	// J(alpha, beta) = 0.667
	// tuned: procs=1 batches=2, pinned: [batches]
}

// ExampleWithSketchPrescreen puts the MinHash prescreening tier in front
// of the exact kernel: pairs whose sketch estimate falls below
// threshold − slack are pruned (reported as S = 0) without running the
// exact popcount path, while surviving pairs keep their byte-exact
// values. The run statistics record what the gate did.
func ExampleWithSketchPrescreen() {
	engine, err := genomeatscale.NewEngine(
		genomeatscale.WithSketchPrescreen(64, 0.5, 0.1),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := engine.Similarity(context.Background(), exampleDataset())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("J(alpha, beta) = %.3f\n", res.Similarity(0, 1))
	fmt.Printf("J(alpha, gamma) = %.3f (pruned: its exact value 0.286 is below 0.5 - 0.1)\n", res.Similarity(0, 2))
	st := res.Stats.Sketch
	fmt.Printf("k=%d: %d of %d pairs reached the exact kernel\n", st.Size, st.PairsSurvived, st.PairsScreened)
	// Output:
	// J(alpha, beta) = 0.667
	// J(alpha, gamma) = 0.000 (pruned: its exact value 0.286 is below 0.5 - 0.1)
	// k=64: 5 of 10 pairs reached the exact kernel
}

// ExampleThreshold retains the near-duplicate pairs above a similarity
// cutoff while the run streams.
func ExampleThreshold() {
	engine, err := genomeatscale.NewEngine()
	if err != nil {
		log.Fatal(err)
	}
	sink := genomeatscale.Threshold(0.5)
	res, err := engine.Stream(context.Background(), exampleDataset(), sink)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range sink.Pairs() {
		fmt.Printf("%s ~ %s: %.3f\n", res.Names[p.I], res.Names[p.J], p.Similarity)
	}
	// Output:
	// alpha ~ beta: 0.667
}
