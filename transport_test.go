package genomeatscale

import (
	"context"
	"math"
	"net"
	"sync"
	"testing"
	"time"
)

// TestFacadeTCPTransport runs a 2-rank job through the public surface —
// NewTCPTransport + WithTransport — and checks rank 0's matrix matches
// the sequential run, with wire counters reported.
func TestFacadeTCPTransport(t *testing.T) {
	ds, err := NewDataset(
		[]string{"x", "y", "z"},
		[][]uint64{{1, 2, 3, 4}, {3, 4, 5, 6}, {100, 101}},
		200,
	)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Similarity(ds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	peers := make([]string, 2)
	for i := range peers {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		peers[i] = ln.Addr().String()
		ln.Close()
	}
	results := make([]*Result, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tr, err := NewTCPTransport(r, peers, 10*time.Second)
			if err != nil {
				errs[r] = err
				return
			}
			defer tr.Close()
			e, err := NewEngine(WithTransport(tr), WithBatches(2), WithWorkers(1))
			if err != nil {
				errs[r] = err
				return
			}
			results[r], errs[r] = e.Similarity(context.Background(), ds)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	root := results[0]
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if math.Abs(seq.Similarity(i, j)-root.Similarity(i, j)) > 1e-12 {
				t.Fatalf("TCP run disagrees with sequential at (%d,%d)", i, j)
			}
		}
	}
	for r, res := range results {
		if res.Stats.Transport == nil || res.Stats.Transport.BytesSent == 0 {
			t.Errorf("rank %d: missing wire counters", r)
		}
	}
	if results[1].S != nil {
		t.Error("non-root rank should not hold the gathered matrix")
	}
}
