package genomeatscale

import (
	"time"

	"genomeatscale/internal/bsp"
	"genomeatscale/internal/bsp/tcptransport"
	"genomeatscale/internal/core"
	"genomeatscale/internal/dist"
)

// Transport is one endpoint of a multi-process BSP job: it carries this
// rank's superstep message exchanges and barrier participation. The
// in-process runtime used by WithProcs alone needs none; NewTCPTransport
// builds the TCP backend for running ranks as separate processes.
type Transport = bsp.Transport

// RankFailedError is the error every surviving rank of a distributed run
// unwinds with when a peer rank times out, disconnects or fails: it names
// the failed rank, the superstep it failed at, and the underlying cause.
// Match it with errors.As.
type RankFailedError = bsp.RankFailedError

// TransportStats holds the wire-level counters of a run over a remote
// transport (dials, retries, bytes on the wire, max superstep exchange
// latency); found on Result.Stats.Transport.
type TransportStats = bsp.TransportStats

// WithTransport runs the engine as ONE rank of a multi-process BSP job
// over the given endpoint: this process executes rank t.Rank() of
// t.NProcs() ranks, and every process of the job must be configured
// identically. The rank count is taken from the transport (overriding
// WithProcs). Result matrices are assembled at rank 0 only; transports are
// single-run and the caller owns their lifecycle (call t.Close when done).
func WithTransport(t Transport) Option {
	return func(o *Options) {
		o.Transport = t
		if t != nil {
			o.Procs = t.NProcs()
			o.SetExplicit(core.FieldProcs)
		}
	}
}

// NewTCPTransport builds one rank's endpoint of a TCP BSP job: peers
// lists every rank's host:port listen address in rank order, and the
// returned transport listens on peers[rank] and lazily dials the others.
// It speaks the engine's wire codec, so it plugs straight into
// WithTransport. stepTimeout bounds each superstep exchange (0 = 30s); a
// rank silent past it is declared failed and every survivor returns a
// RankFailedError naming it. Close the transport after the run.
func NewTCPTransport(rank int, peers []string, stepTimeout time.Duration) (Transport, error) {
	return tcptransport.New(rank, peers, dist.NewWireCodec(),
		tcptransport.Options{StepTimeout: stepTimeout})
}
