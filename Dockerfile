# Multi-stage build for cmd/similarityd, the long-running similarity query
# service. The final image is a static binary on scratch: the server has no
# runtime dependencies (stdlib-only HTTP, mmap via raw syscalls), so the
# image is just the binary plus CA-free TLS-free plumbing it doesn't need.
#
#   docker build -t similarityd .
#   docker run -v $PWD:/data -p 8044:8044 similarityd \
#       -index /data/corpus.idx -addr :8044
#
# The container answers SIGTERM with a graceful drain (see README "Query
# service"), so `docker stop` finishes in-flight queries before exiting.

FROM golang:1.24 AS build
WORKDIR /src
COPY go.mod ./
COPY . .
# CGO off for a fully static binary; trim paths for reproducible builds.
RUN CGO_ENABLED=0 go build -trimpath -ldflags='-s -w' -o /out/similarityd ./cmd/similarityd

FROM scratch
COPY --from=build /out/similarityd /similarityd
# The index is provided by a volume; /data is the conventional mount point.
VOLUME ["/data"]
EXPOSE 8044
ENTRYPOINT ["/similarityd"]
CMD ["-index", "/data/corpus.idx", "-addr", ":8044"]
