// Package genomeatscale is the public façade of this Go reproduction of
// "Communication-Efficient Jaccard Similarity for High-Performance
// Distributed Genome Comparisons" (Besta et al., IPDPS 2020).
//
// It re-exports the entry points a downstream user needs:
//
//   - building datasets (from k-mer sets, graphs, documents or synthetic
//     generators in the internal packages),
//   - running SimilarityAtScale sequentially or across virtual BSP ranks,
//     either one-shot (Similarity) or through a reusable, cancellable
//     Engine (NewEngine) that can stream the result tile by tile into a
//     TileSink (CollectFull, TopK, Threshold, or a custom sink),
//   - computing exact pairwise Jaccard values for verification.
//
// The full machinery (BSP runtime, processor grids, bitmask compression,
// cost model, GenomeAtScale preprocessing) lives in the internal packages;
// see README.md for the architecture overview and examples/ for runnable
// programs.
package genomeatscale

import (
	"context"

	"genomeatscale/internal/core"
)

// Dataset is the abstract input of SimilarityAtScale: n samples, each a set
// of attribute indices in [0, NumAttributes).
type Dataset = core.Dataset

// InMemoryDataset is the simplest Dataset implementation.
type InMemoryDataset = core.InMemoryDataset

// Options configures a SimilarityAtScale run (batch count, bitmask width,
// virtual rank count, replication factor, shared-memory worker count).
type Options = core.Options

// Result holds the similarity matrix S, distance matrix D = 1 − S,
// intersection cardinalities B, per-sample cardinalities, and run
// statistics (including exact communication volumes for distributed runs).
type Result = core.Result

// TuningReport records what an autotuned run (WithAutotune) decided and
// why: the host profile, the sampled dataset statistics, the chosen plan
// with the cost model's predictions, and which dimensions the caller had
// pinned. Found on Result.Stats.Tuning.
type TuningReport = core.TuningReport

// SketchStats records what the MinHash prescreening tier
// (WithSketchPrescreen) did: the resolved gate parameters, how many pairs
// were screened and how many survived to the exact tier, and the modelled
// worst-case recall at the threshold. Found on Result.Stats.Sketch.
type SketchStats = core.SketchStats

// NewDataset builds a dataset from raw attribute lists; values are sorted
// and de-duplicated, names may be nil.
func NewDataset(names []string, samples [][]uint64, numAttributes uint64) (*InMemoryDataset, error) {
	return core.NewInMemoryDataset(names, samples, numAttributes)
}

// DefaultOptions returns the paper's default configuration: one batch,
// 64-bit masks, a single process, no replication.
func DefaultOptions() Options { return core.DefaultOptions() }

// Similarity runs SimilarityAtScale once. With Options.Procs == 1 it uses
// the sequential algebraic pipeline; otherwise it runs the fully
// distributed pipeline over the in-process BSP runtime.
//
// Similarity is the legacy one-shot form, kept as a thin wrapper over the
// reusable engine: it is exactly NewEngineFromOptions(opts) followed by
// Engine.Similarity with a background context. Code that runs repeatedly,
// needs cancellation, or wants streaming output should build an Engine
// (see NewEngine and Engine.Stream).
func Similarity(ds Dataset, opts Options) (*Result, error) {
	e, err := NewEngineFromOptions(opts)
	if err != nil {
		return nil, err
	}
	return e.Similarity(context.Background(), ds)
}

// ExactJaccard computes the exact pairwise Jaccard similarity of two sorted
// attribute sets; it is the brute-force reference the algebraic paths are
// validated against.
func ExactJaccard(x, y []uint64) float64 { return core.JaccardPair(x, y) }

// JaccardDistance returns 1 − ExactJaccard(x, y).
func JaccardDistance(x, y []uint64) float64 { return core.JaccardDistancePair(x, y) }
