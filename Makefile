.PHONY: build test race bench examples

build:
	go build ./...

# examples go-runs every examples/ program (all are self-contained on tiny
# synthetic inputs) so façade drift breaks CI instead of silently rotting
# the documentation.
examples:
	@set -e; for d in examples/*/; do echo "== $$d"; go run ./$$d > /dev/null; done

test:
	go test ./...

race:
	go test -race ./...

# bench writes kernel-level benchmark results (density sweep × storage
# policy × workers, ns/op and speedup-vs-serial-sparse) to
# BENCH_kernels.json; CI uploads the file as an artifact. Drop -quick for
# the full sweep on a quiet machine.
bench:
	go run ./cmd/benchkernels -quick -out BENCH_kernels.json
