.PHONY: build test race bench

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# bench writes kernel-level benchmark results (density sweep × storage
# policy × workers, ns/op and speedup-vs-serial-sparse) to
# BENCH_kernels.json; CI uploads the file as an artifact. Drop -quick for
# the full sweep on a quiet machine.
bench:
	go run ./cmd/benchkernels -quick -out BENCH_kernels.json
