.PHONY: build test race bench benchcheck examples fuzz lint

build:
	go build ./...

# lint is the repo's zero-findings gate: gofmt, standard vet, and the five
# repo-specific gaslint analyzers (unsafecast, panicfree, ctxflow,
# errclose, maprange — see docs/static_analysis.md). gaslint runs twice on
# purpose: once under `go vet -vettool=` (the same driver CI and editors
# use) and once standalone, so a vettool-protocol regression cannot
# silently skip the analyzers.
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "files need gofmt:"; echo "$$out"; exit 1; fi
	go vet ./...
	go build -o bin/gaslint ./cmd/gaslint
	go vet -vettool=bin/gaslint ./...
	go run ./cmd/gaslint ./...

# examples go-runs every examples/ program (all are self-contained on tiny
# synthetic inputs) so façade drift breaks CI instead of silently rotting
# the documentation.
examples:
	@set -e; for d in examples/*/; do echo "== $$d"; go run ./$$d > /dev/null; done

test:
	go test ./...

race:
	go test -race ./...

# fuzz replays the checked-in seed corpora (always, via go test) and then
# fuzzes each target briefly — enough for CI to catch regressions in the
# untrusted-input parsers and the dispatched popcount kernels without
# burning minutes.
fuzz:
	go test -run=^$$ -fuzz=FuzzReadBinary -fuzztime=10s ./internal/samplefile
	go test -run=^$$ -fuzz=FuzzFromEntries -fuzztime=10s ./internal/bitmat
	go test -run=^$$ -fuzz=FuzzPopcountAndSlice -fuzztime=10s ./internal/bitutil
	go test -run=^$$ -fuzz=FuzzReadFrame -fuzztime=10s ./internal/bsp/tcptransport
	go test -run=^$$ -fuzz=FuzzReadIndex -fuzztime=10s ./internal/index/indexfile

# bench writes kernel-level benchmark results (density sweep × storage
# policy × workers, asm-vs-portable dispatch, arena allocations,
# autotuned-vs-manual) to BENCH_kernels.json; CI uploads the file as an
# artifact. Drop -quick for the full sweep on a quiet machine.
bench:
	go run ./cmd/benchkernels -quick -out BENCH_kernels.json

# benchcheck regenerates BENCH_kernels.json and compares its dimensionless
# ratios (kernel speedups, dispatch speedup, arena reduction, autotune
# ratio) against the committed baseline, failing on a >15% regression.
# Refresh the baseline deliberately with:
#   go run ./cmd/benchkernels -quick -out BENCH_baseline.json
benchcheck: bench
	go run ./cmd/benchcheck -baseline BENCH_baseline.json -current BENCH_kernels.json
