.PHONY: build test race bench examples fuzz

build:
	go build ./...

# examples go-runs every examples/ program (all are self-contained on tiny
# synthetic inputs) so façade drift breaks CI instead of silently rotting
# the documentation.
examples:
	@set -e; for d in examples/*/; do echo "== $$d"; go run ./$$d > /dev/null; done

test:
	go test ./...

race:
	go test -race ./...

# fuzz replays the checked-in seed corpora (always, via go test) and then
# fuzzes each target briefly — enough for CI to catch regressions in the
# untrusted-input parsers without burning minutes.
fuzz:
	go test -run=^$$ -fuzz=FuzzReadBinary -fuzztime=10s ./internal/samplefile
	go test -run=^$$ -fuzz=FuzzFromEntries -fuzztime=10s ./internal/bitmat

# bench writes kernel-level benchmark results (density sweep × storage
# policy × workers, ns/op and speedup-vs-serial-sparse) to
# BENCH_kernels.json; CI uploads the file as an artifact. Drop -quick for
# the full sweep on a quiet machine.
bench:
	go run ./cmd/benchkernels -quick -out BENCH_kernels.json
