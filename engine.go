package genomeatscale

import (
	"context"

	"genomeatscale/internal/core"
	"genomeatscale/internal/tile"
)

// Option configures an Engine; pass Options to NewEngine. Each With*
// function overrides one field of the paper's default configuration
// (DefaultOptions).
type Option func(*Options)

// WithProcs sets the number of virtual BSP ranks; values above 1 select
// the fully distributed pipeline. Under WithAutotune this pins the rank
// count: the tuner plans around it instead of choosing its own.
func WithProcs(p int) Option {
	return func(o *Options) { o.Procs = p; o.SetExplicit(core.FieldProcs) }
}

// WithWorkers sets the shared-memory worker-goroutine count per process
// (0 = one per available CPU — a fair share per rank on the distributed
// path — 1 = the exact serial kernels).
func WithWorkers(w int) Option {
	return func(o *Options) { o.Workers = w; o.SetExplicit(core.FieldWorkers) }
}

// WithBatches sets the number of row batches the indicator matrix is split
// into (r in Eq. 3 of the paper). Pinned under WithAutotune.
func WithBatches(r int) Option {
	return func(o *Options) { o.BatchCount = r; o.SetExplicit(core.FieldBatchCount) }
}

// WithMaskBits sets the bitmask compression width b (1..64). Pinned under
// WithAutotune.
func WithMaskBits(b int) Option {
	return func(o *Options) { o.MaskBits = b; o.SetExplicit(core.FieldMaskBits) }
}

// WithDenseThreshold sets the stored-word count at which a packed column is
// held as a dense slab (0 = auto, negative = always sparse). Pinned under
// WithAutotune.
func WithDenseThreshold(t int) Option {
	return func(o *Options) { o.DenseThreshold = t; o.SetExplicit(core.FieldDenseThreshold) }
}

// WithReplication sets the processor-grid replication factor c of the
// √(p/c) × √(p/c) × c layout. Pinned under WithAutotune.
func WithReplication(c int) Option {
	return func(o *Options) { o.Replication = c; o.SetExplicit(core.FieldReplication) }
}

// WithTileRows sets the row-band height of the tiles the sequential path
// emits when streaming (0 = default). The distributed path's tiles are the
// processor-grid result blocks and ignore this setting. Pinned under
// WithAutotune.
func WithTileRows(r int) Option {
	return func(o *Options) { o.TileRows = r; o.SetExplicit(core.FieldTileRows) }
}

// WithSketchPrescreen enables the MinHash prescreening tier: bottom-k
// sketches of size `size` estimate every pairwise Jaccard first, and only
// pairs whose estimate reaches threshold − slack run through the exact
// tiled kernel; the rest are pruned (reported as B = 0, S = 0, D = 1)
// without ever touching the popcount path. Surviving pairs are
// byte-identical to a non-prescreened run, so composing with a
// ThresholdSink at the same threshold trades a little recall — reported
// as RunStats.Sketch.EstimatedRecall — for skipping the exact work of
// everything below the gate.
//
// size 0 derives the sketch size from threshold and slack (and is tunable
// under WithAutotune; an explicit size is pinned); slack 0 uses the
// default margin. Prescreening runs on the sequential path only: combine
// it with WithProcs(1) (the default), not a rank grid.
func WithSketchPrescreen(size int, threshold, slack float64) Option {
	return func(o *Options) {
		o.Sketch = core.SketchOptions{Size: size, Threshold: threshold, Slack: slack}
		if size > 0 {
			o.SetExplicit(core.FieldSketchSize)
		}
	}
}

// WithAutotune derives the run configuration from the dataset instead of
// the defaults: each Similarity or Stream call samples the dataset's
// dimensions and density, feeds them with the host profile (cores, memory
// bandwidth, available memory — measured once in NewEngine) into the BSP
// cost model, and picks the rank grid, replication, batch count, tile rows
// and dense-storage threshold that minimise the predicted time. Options
// set through the other With* functions are pinned: the tuner plans around
// them. The decisions, the sampled statistics and the model's predictions
// are recorded in Result.Stats.Tuning. Tuning never changes results — only
// how they are computed.
func WithAutotune(on bool) Option { return func(o *Options) { o.Autotune = on } }

// WithSkipGather controls the legacy stats-only mode of Engine.Similarity:
// when set, the full matrices are not assembled. Engine.Stream with the
// Discard sink is the streaming equivalent.
func WithSkipGather(skip bool) Option { return func(o *Options) { o.SkipGather = skip } }

// Engine is a reusable, validated SimilarityAtScale configuration. Option
// validation, the processor-grid layout and the worker-pool sizing happen
// once in NewEngine and are amortised across calls; the engine is
// immutable and safe for concurrent use.
//
// Both entry points take a context: cancelling it aborts the batch loop,
// the per-column pack stage and the BSP superstep barriers, returning
// ctx.Err() promptly with no leaked goroutines.
type Engine struct {
	core *core.Engine
}

// NewEngine builds an engine from the paper's defaults with the given
// overrides applied, validating the resulting configuration once.
func NewEngine(options ...Option) (*Engine, error) {
	o := DefaultOptions()
	for _, opt := range options {
		opt(&o)
	}
	return NewEngineFromOptions(o)
}

// NewEngineFromOptions builds an engine from a fully populated Options
// value — the bridge for callers (like the CLIs) that already assembled an
// Options struct. New code should prefer NewEngine with functional options.
func NewEngineFromOptions(opts Options) (*Engine, error) {
	ce, err := core.NewEngine(opts)
	if err != nil {
		return nil, err
	}
	return &Engine{core: ce}, nil
}

// Options returns the configuration the engine was built with.
func (e *Engine) Options() Options { return e.core.Options() }

// Similarity runs SimilarityAtScale with the classic gathered-output
// semantics: the full B, S and D matrices are assembled (at rank 0 for the
// distributed path) unless the engine was built WithSkipGather(true).
func (e *Engine) Similarity(ctx context.Context, ds Dataset) (*Result, error) {
	return e.core.Similarity(ctx, ds)
}

// Stream runs SimilarityAtScale and delivers the result to sink as a
// sequence of finalized tiles instead of assembling the n×n matrices; the
// returned Result carries cardinalities and run statistics (tiles emitted,
// peak resident tile words, sink time) but nil B, S and D. Sink calls
// happen on a single goroutine in deterministic (RowLo, ColLo) order;
// tiles are only valid during Emit. Streaming into CollectFull reproduces
// Engine.Similarity byte for byte; TopK and Threshold keep the output
// memory bounded by the reduction instead of n².
func (e *Engine) Stream(ctx context.Context, ds Dataset, sink TileSink) (*Result, error) {
	return e.core.Stream(ctx, ds, sink)
}

// Tile is one finalized rectangular block of the result matrices: rows
// [RowLo, RowLo+Rows) × columns [ColLo, ColLo+Cols) of B, S and D in
// row-major order. Tiles are only valid during the Emit call delivering
// them.
type Tile = core.Tile

// TileSink consumes finalized tiles during Engine.Stream. Sinks may
// optionally implement Start(n, names) and Flush() (see internal/tile's
// Starter and Flusher), which the engine invokes around the tile sequence.
type TileSink = core.TileSink

// Pair is one upper-triangle sample pair (I < J) retained by a reducing
// sink, with its Jaccard similarity.
type Pair = tile.Pair

// CollectSink reassembles streamed tiles into full dense matrices — the
// streaming form of the legacy full gather.
type CollectSink = tile.Collect

// TopKSink retains the k most similar pairs in O(k) memory.
type TopKSink = tile.TopKSink

// ThresholdSink retains every pair at or above a similarity threshold.
type ThresholdSink = tile.ThresholdSink

// CollectFull returns a sink that reassembles the emitted tiles into full
// B, S and D matrices, byte-identical to the ones Engine.Similarity
// returns.
func CollectFull() *CollectSink { return tile.NewCollect() }

// TopK returns a sink retaining the k most similar sample pairs (i < j)
// seen across all tiles, in O(k) memory. Ties are broken deterministically
// by ascending (i, j).
func TopK(k int) *TopKSink { return tile.NewTopK(k) }

// Threshold returns a sink retaining every sample pair (i < j) whose
// similarity is at least tau — the near-duplicate query where the
// interesting output is far smaller than n².
func Threshold(tau float64) *ThresholdSink { return tile.NewThreshold(tau) }

// Discard drops every tile: the run (and its statistics) execute without
// materialising any output — the streaming equivalent of SkipGather.
var Discard TileSink = tile.Discard

// SortPairs orders pairs by descending similarity, ties by ascending
// (I, J) — the order the reducing sinks return and the order a post-hoc
// full-matrix scan must apply to agree with them.
func SortPairs(pairs []Pair) { tile.SortPairs(pairs) }
